"""Tests that the built NPD-index satisfies the paper's rules and theorems.

These are the scientifically load-bearing tests:

* Rule 1 / Theorem 1 — ``P ∪ SC(P)`` is a *complete fragment*: every
  intra-fragment distance computed locally equals the global distance.
* Rule 2 — DL entries reference portals, are sorted, respect ``maxR``
  and record exact distances.
* Theorem 3 — distances from any source to fragment members are exactly
  recoverable from ``P ∪ SC(P) ∪ DL(P)``.
* Theorem 2/4 (minimality) — SC contains no edge whose shortest path
  stays inside the fragment or passes through another member.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DLNodePolicy,
    NPDBuildConfig,
    build_all_indexes,
    build_fragments,
    build_npd_index,
)
from repro.core.coverage import FragmentRuntime
from repro.partition import BfsPartitioner, Partition, RandomPartitioner
from repro.search import shortest_path_distances

from helpers import make_random_network, oracle_distances, random_partition_assignment


def build_case(seed: int, k: int = 3, policy=DLNodePolicy.OBJECTS, max_radius=math.inf):
    net = make_random_network(seed=seed, num_junctions=22, num_objects=10, vocabulary=5)
    partition = BfsPartitioner(seed=seed).partition(net, k)
    fragments = build_fragments(net, partition)
    config = NPDBuildConfig(max_radius=max_radius, node_policy=policy)
    indexes, _stats = build_all_indexes(net, fragments, config)
    return net, partition, fragments, indexes


class TestRule1ShortcutsAndTheorem1:
    def test_shortcut_endpoints_are_members(self):
        net, _p, fragments, indexes = build_case(seed=1)
        for fragment, index in zip(fragments, indexes):
            for (u, v), w in index.shortcuts.items():
                assert u in fragment.members and v in fragment.members

    def test_shortcuts_never_duplicate_an_equal_original_edge(self):
        """Condition 2: a shortcut may coexist with an original edge only
        when the edge is strictly longer than the shortest path."""
        net, _p, fragments, indexes = build_case(seed=2)
        for index in indexes:
            for (u, v), w in index.shortcuts.items():
                if net.has_edge(u, v):
                    assert net.edge_weight(u, v) > w

    def test_shortcut_weights_are_exact_global_distances(self):
        net, _p, _fragments, indexes = build_case(seed=3)
        for index in indexes:
            for (u, v), w in index.shortcuts.items():
                expected = oracle_distances(net, [u]).get(v)
                assert expected is not None
                assert w == pytest.approx(expected)

    def test_shortcut_paths_avoid_other_members(self):
        """Rule 1 condition 3: the realised shortest path has no interior member."""
        import networkx as nx

        from helpers import to_networkx

        net, _p, fragments, indexes = build_case(seed=4)
        graph = to_networkx(net)
        for fragment, index in zip(fragments, indexes):
            for (u, v), w in index.shortcuts.items():
                # At least one shortest path must avoid interior members
                # (the builder records the tree path, which qualifies).
                found_clean = False
                for path in nx.all_shortest_paths(graph, u, v, weight="weight"):
                    interior = set(path[1:-1])
                    if not (interior & fragment.members):
                        found_clean = True
                        break
                assert found_clean, f"shortcut {(u, v)} has no member-free path"

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 400), k=st.integers(2, 4))
    def test_complete_fragment_property(self, seed, k):
        """Theorem 1: local distances on P ∪ SC(P) equal global distances."""
        net, _p, fragments, indexes = build_case(seed=seed, k=k)
        for fragment, index in zip(fragments, indexes):
            runtime = FragmentRuntime(fragment, index)
            members = sorted(fragment.members)
            source = members[0]
            local = shortest_path_distances(runtime.adjacency, [source])
            oracle = oracle_distances(net, [source])
            for member in members:
                expected = oracle.get(member, math.inf)
                assert local.get(member, math.inf) == pytest.approx(expected)


class TestRule2DistanceLists:
    def test_dl_values_reference_portals(self):
        _net, _p, fragments, indexes = build_case(seed=5)
        for fragment, index in zip(fragments, indexes):
            for pairs in list(index.keyword_entries.values()) + list(
                index.node_entries.values()
            ):
                for pd in pairs:
                    assert pd.portal in fragment.portals

    def test_dl_lists_sorted_by_distance(self):
        _net, _p, _fragments, indexes = build_case(seed=6)
        for index in indexes:
            for pairs in list(index.keyword_entries.values()) + list(
                index.node_entries.values()
            ):
                dists = [pd.distance for pd in pairs]
                assert dists == sorted(dists)

    def test_node_entries_are_outside_objects(self):
        net, _p, fragments, indexes = build_case(seed=7)
        for fragment, index in zip(fragments, indexes):
            for node in index.node_entries:
                assert node not in fragment.members
                assert net.is_object(node)

    def test_node_entry_distances_are_exact(self):
        net, _p, _fragments, indexes = build_case(seed=8)
        for index in indexes:
            for node, pairs in index.node_entries.items():
                oracle = oracle_distances(net, [node])
                for pd in pairs:
                    assert pd.distance == pytest.approx(oracle[pd.portal])

    def test_keyword_entry_is_min_over_outside_nodes(self):
        net, _p, fragments, indexes = build_case(seed=9)
        for fragment, index in zip(fragments, indexes):
            for keyword, pairs in index.keyword_entries.items():
                outside_nodes = [
                    n
                    for n in net.nodes()
                    if keyword in net.keywords(n) and n not in fragment.members
                ]
                if not outside_nodes:
                    continue
                oracle = oracle_distances(net, outside_nodes)
                for pd in pairs:
                    # Recorded distance is a real path length, never below
                    # the true multi-source minimum.
                    assert pd.distance >= oracle[pd.portal] - 1e-9

    def test_max_radius_prunes_entries(self):
        _net, _p, _fragments, indexes = build_case(seed=10, max_radius=2.0)
        for index in indexes:
            for pairs in list(index.keyword_entries.values()) + list(
                index.node_entries.values()
            ):
                for pd in pairs:
                    assert pd.distance <= 2.0
            for _edge, w in index.shortcuts.items():
                assert w <= 2.0

    def test_node_policy_none_stores_no_node_entries(self):
        _net, _p, _fragments, indexes = build_case(seed=11, policy=DLNodePolicy.NONE)
        for index in indexes:
            assert index.node_entries == {}

    def test_node_policy_all_supersets_objects(self):
        net, partition, fragments, obj_indexes = build_case(seed=12)
        config = NPDBuildConfig(max_radius=math.inf, node_policy=DLNodePolicy.ALL)
        all_indexes, _ = build_all_indexes(net, fragments, config)
        for obj_index, all_index in zip(obj_indexes, all_indexes):
            assert set(obj_index.node_entries) <= set(all_index.node_entries)
            assert obj_index.keyword_entries == all_index.keyword_entries
            assert obj_index.shortcuts == all_index.shortcuts


class TestTheorem3Reconstruction:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_outside_object_distances_recoverable(self, seed):
        """d(A, B) = min over DL pairs of d(A, N) + d_local(N, B)."""
        net, _p, fragments, indexes = build_case(seed=seed, k=3)
        for fragment, index in zip(fragments, indexes):
            runtime = FragmentRuntime(fragment, index)
            outside_objects = [
                n for n in net.object_nodes() if n not in fragment.members
            ][:3]
            for source in outside_objects:
                oracle = oracle_distances(net, [source])
                seeds = index.node_seeds(source, math.inf)
                local = (
                    shortest_path_distances(runtime.adjacency, seeds) if seeds else {}
                )
                for member in fragment.members:
                    expected = oracle.get(member, math.inf)
                    assert local.get(member, math.inf) == pytest.approx(expected)


class TestMinimality:
    def test_no_shortcut_between_locally_connected_pairs(self):
        """A shortcut never duplicates a distance that P alone realises.

        If the (unique) shortest path between two members stays inside
        the fragment, Rule 1 must not add a shortcut for the pair.
        """
        import networkx as nx

        from helpers import to_networkx

        net, _p, fragments, indexes = build_case(seed=13)
        graph = to_networkx(net)
        for fragment, index in zip(fragments, indexes):
            for (u, v) in index.shortcuts:
                paths = list(nx.all_shortest_paths(graph, u, v, weight="weight"))
                fully_internal = any(
                    all(node in fragment.members for node in path) for path in paths
                )
                if len(paths) == 1:
                    assert not fully_internal, (
                        f"shortcut {(u, v)} duplicates an internal path"
                    )

    def test_shortcut_count_is_optimal_under_unique_paths(self):
        """Rule 1's SC equals the brute-force minimal standard shortcut set.

        Computed independently: for every member pair whose unique global
        shortest path leaves the fragment and has no interior member, a
        shortcut is required; no other pair gets one.
        """
        import networkx as nx

        from helpers import to_networkx

        net, _p, fragments, indexes = build_case(seed=14)
        graph = to_networkx(net)
        for fragment, index in zip(fragments, indexes):
            members = sorted(fragment.members)
            expected: set[tuple[int, int]] = set()
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    dist = nx.shortest_path_length(graph, u, v, weight="weight")
                    if net.has_edge(u, v) and net.edge_weight(u, v) <= dist * (1 + 1e-12):
                        continue  # the original edge already realises d(u, v)
                    paths = list(nx.all_shortest_paths(graph, u, v, weight="weight"))
                    if len(paths) != 1:
                        continue  # ties handled by the relaxed Rule 3 superset
                    interior = set(paths[0][1:-1])
                    if interior and not (interior & fragment.members):
                        expected.add((u, v))
            actual_unique = {
                key
                for key in index.shortcuts
                if len(
                    list(
                        nx.all_shortest_paths(graph, key[0], key[1], weight="weight")
                    )
                )
                == 1
            }
            assert expected <= set(index.shortcuts)
            assert actual_unique == expected
