"""Tests for incremental keyword maintenance of the NPD-index.

Every operation is validated against the gold standard: rebuilding the
whole index from scratch on the updated network and comparing query
results (and, where deterministic, the DL entries themselves).
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import CentralizedEvaluator
from repro.core import (
    CoverageTerm,
    KeywordMaintainer,
    KeywordSource,
    NPDBuildConfig,
    QClassQuery,
    SetOp,
    build_all_indexes,
    build_fragments,
    node_dl_contributions,
    sgkq,
)
from repro.core.coverage import FragmentRuntime
from repro.core.executor import execute_fragment_task
from repro.exceptions import GraphError
from repro.graph.road_network import RoadNetwork
from repro.partition import BfsPartitioner

from helpers import make_random_network, oracle_distances


def build_state(seed: int, k: int = 3, max_radius: float = math.inf):
    net = make_random_network(seed=seed, num_junctions=18, num_objects=10, vocabulary=4)
    partition = BfsPartitioner(seed=seed).partition(net, k)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=max_radius))
    return KeywordMaintainer(net, partition, fragments, list(indexes))


def answers(maintainer: KeywordMaintainer, query) -> frozenset[int]:
    merged: set[int] = set()
    for fragment, index in zip(maintainer.fragments, maintainer.indexes):
        runtime = FragmentRuntime(fragment, index)
        merged |= execute_fragment_task(runtime, query).local_result
    return frozenset(merged)


class TestNodeDLContributions:
    def test_matches_builder_semantics(self):
        """Forward contributions reproduce exact first-entry distances."""
        maintainer = build_state(seed=21)
        net, partition = maintainer.network, maintainer.partition
        source = next(iter(net.object_nodes()))
        contributions = node_dl_contributions(net, partition, source, math.inf)
        oracle = oracle_distances(net, [source])
        for fragment_id, portal_distances in contributions.items():
            fragment = maintainer.fragments[fragment_id]
            assert fragment_id != partition.fragment_of(source)
            for portal, dist in portal_distances.items():
                assert portal in fragment.portals
                assert dist == pytest.approx(oracle[portal])

    def test_bounded_by_max_radius(self):
        maintainer = build_state(seed=22)
        source = next(iter(maintainer.network.object_nodes()))
        contributions = node_dl_contributions(
            maintainer.network, maintainer.partition, source, 2.0
        )
        for portal_distances in contributions.values():
            for dist in portal_distances.values():
                assert dist <= 2.0

    def test_reconstructs_distances_into_fragment(self):
        """source -> member distances via contributions are exact."""
        from repro.search import shortest_path_distances

        maintainer = build_state(seed=23)
        net = maintainer.network
        source = next(iter(net.object_nodes()))
        contributions = node_dl_contributions(net, maintainer.partition, source, math.inf)
        oracle = oracle_distances(net, [source])
        for fragment, index in zip(maintainer.fragments, maintainer.indexes):
            if source in fragment.members:
                continue
            runtime = FragmentRuntime(fragment, index)
            seeds = contributions.get(fragment.fragment_id, {})
            local = shortest_path_distances(runtime.adjacency, seeds) if seeds else {}
            for member in fragment.members:
                assert local.get(member, math.inf) == pytest.approx(
                    oracle.get(member, math.inf)
                )


class TestAddKeyword:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 600))
    def test_add_matches_full_rebuild(self, seed):
        maintainer = build_state(seed=seed)
        rng = random.Random(seed)
        node = rng.choice(list(maintainer.network.object_nodes()))
        maintainer.add_keyword(node, "brandnew")

        rebuilt, _ = build_all_indexes(
            maintainer.network,
            maintainer.fragments,
            NPDBuildConfig(max_radius=math.inf),
        )
        oracle = CentralizedEvaluator(maintainer.network)
        partner = sorted(maintainer.network.all_keywords() - {"brandnew"})[0]
        for radius in (1.0, 4.0):
            query = sgkq(["brandnew", partner], radius)
            assert answers(maintainer, query) == oracle.results(query)
        # The patched entry must agree with the rebuilt entry (same
        # portals, distances equal up to float summation order).
        for patched, fresh in zip(maintainer.indexes, rebuilt):
            patched_pairs = patched.keyword_entries.get("brandnew", ())
            fresh_pairs = fresh.keyword_entries.get("brandnew", ())
            assert {pd.portal for pd in patched_pairs} == {
                pd.portal for pd in fresh_pairs
            }
            fresh_by_portal = {pd.portal: pd.distance for pd in fresh_pairs}
            for pd in patched_pairs:
                assert pd.distance == pytest.approx(fresh_by_portal[pd.portal])

    def test_add_existing_is_noop(self):
        maintainer = build_state(seed=30)
        node = next(iter(maintainer.network.object_nodes()))
        keyword = next(iter(maintainer.network.keywords(node)))
        before = [dict(i.keyword_entries) for i in maintainer.indexes]
        maintainer.add_keyword(node, keyword)
        after = [dict(i.keyword_entries) for i in maintainer.indexes]
        assert before == after

    def test_add_to_junction_rejected(self):
        maintainer = build_state(seed=31)
        junction = next(
            n for n in maintainer.network.nodes() if not maintainer.network.is_object(n)
        )
        with pytest.raises(GraphError):
            maintainer.add_keyword(junction, "x")

    def test_local_postings_updated(self):
        maintainer = build_state(seed=32)
        node = next(iter(maintainer.network.object_nodes()))
        maintainer.add_keyword(node, "fresh")
        home = maintainer.partition.fragment_of(node)
        assert node in maintainer.fragments[home].keyword_index.local_nodes_with("fresh")

    def test_respects_max_radius(self):
        maintainer = build_state(seed=33, max_radius=3.0)
        node = next(iter(maintainer.network.object_nodes()))
        maintainer.add_keyword(node, "near")
        for index in maintainer.indexes:
            for pd in index.keyword_entries.get("near", ()):
                assert pd.distance <= 3.0


class TestRemoveKeyword:
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 600))
    def test_remove_matches_full_rebuild(self, seed):
        maintainer = build_state(seed=seed)
        rng = random.Random(seed + 1)
        carriers = [
            n for n in maintainer.network.nodes() if "w0" in maintainer.network.keywords(n)
        ]
        if not carriers:
            return
        node = rng.choice(carriers)
        maintainer.remove_keyword(node, "w0")

        oracle = CentralizedEvaluator(maintainer.network, strict_keywords=False)
        partner = sorted(maintainer.network.all_keywords() | {"w1"})[-1]
        for radius in (1.0, 4.0):
            query = QClassQuery.from_chain(
                (CoverageTerm(KeywordSource("w0"), radius),
                 CoverageTerm(KeywordSource(partner), radius)),
                [SetOp.INTERSECT],
            )
            assert answers(maintainer, query) == oracle.results(query)

    def test_remove_last_carrier_clears_entries(self):
        maintainer = build_state(seed=40)
        net = maintainer.network
        carriers = [n for n in net.nodes() if "w2" in net.keywords(n)]
        for node in carriers:
            maintainer.remove_keyword(node, "w2")
        for index in maintainer.indexes:
            assert "w2" not in index.keyword_entries
        assert all("w2" not in maintainer.network.keywords(n) for n in net.nodes())

    def test_remove_absent_is_noop(self):
        maintainer = build_state(seed=41)
        node = next(iter(maintainer.network.object_nodes()))
        before = [dict(i.keyword_entries) for i in maintainer.indexes]
        maintainer.remove_keyword(node, "never-there")
        assert before == [dict(i.keyword_entries) for i in maintainer.indexes]

    def test_add_then_remove_round_trips(self):
        maintainer = build_state(seed=42)
        node = next(iter(maintainer.network.object_nodes()))
        reference = {
            i.fragment_id: dict(i.keyword_entries) for i in maintainer.indexes
        }
        maintainer.add_keyword(node, "transient")
        maintainer.remove_keyword(node, "transient")
        for index in maintainer.indexes:
            assert "transient" not in index.keyword_entries
            # Entries for other keywords are untouched.
            for kw, pairs in reference[index.fragment_id].items():
                assert index.keyword_entries[kw] == pairs


class TestRebuildFragment:
    def test_rebuild_is_identical_for_unchanged_fragment(self):
        maintainer = build_state(seed=50)
        original = maintainer.indexes[0]
        maintainer.rebuild_fragment(0)
        rebuilt = maintainer.indexes[0]
        assert rebuilt.shortcuts == original.shortcuts
        assert rebuilt.keyword_entries == original.keyword_entries
        assert rebuilt.node_entries == original.node_entries

    def test_unknown_fragment_rejected(self):
        maintainer = build_state(seed=51)
        from repro.exceptions import DisksError

        with pytest.raises(DisksError):
            maintainer.rebuild_fragment(99)


class TestBoundRuntimeInvalidation:
    """Regression: compiled kernels must not serve stale state after maintenance.

    A :class:`FragmentRuntime` compiles its index into a flat-array
    kernel lazily and memoises it; before the version-tracking fix a
    maintainer mutation left the memoised kernel (and coverage cache)
    answering from the pre-update index.
    """

    def _merged(self, runtimes, query) -> frozenset[int]:
        merged: set[int] = set()
        for runtime in runtimes:
            merged |= execute_fragment_task(runtime, query).local_result
        return frozenset(merged)

    def test_compiled_matches_reference_after_maintenance_batch(self):
        maintainer = build_state(seed=70)
        compiled = [
            FragmentRuntime(f, i, compiled=True)
            for f, i in zip(maintainer.fragments, maintainer.indexes)
        ]
        for runtime in compiled:
            maintainer.bind(runtime)
        warmup = sgkq(["w0", "w1"], 4.0)
        self._merged(compiled, warmup)  # memoise kernels pre-mutation

        net = maintainer.network
        node = next(iter(net.object_nodes()))
        carrier = next(n for n in net.nodes() if "w1" in net.keywords(n))
        u, (v, w) = 0, next(iter(net.neighbors(0)))
        maintainer.add_keyword(node, "hotfix")
        maintainer.remove_keyword(carrier, "w1")
        maintainer.set_edge_weight(u, v, w * 1.8)

        oracle = CentralizedEvaluator(maintainer.network, strict_keywords=False)
        reference = [
            FragmentRuntime(f, i, compiled=False)
            for f, i in zip(maintainer.fragments, maintainer.indexes)
        ]
        for keywords in (["hotfix", "w0"], ["w0", "w1"]):
            for radius in (1.0, 4.0):
                query = QClassQuery.from_chain(
                    tuple(CoverageTerm(KeywordSource(kw), radius) for kw in keywords),
                    [SetOp.INTERSECT],
                )
                expected = oracle.results(query)
                assert self._merged(reference, query) == expected
                # The bound, warmed, compiled runtimes agree — the kernels
                # were invalidated and rebuilt, not served stale.
                assert self._merged(compiled, query) == expected

    def test_unbound_runtime_self_heals_on_keyword_mutation(self):
        """In-place index mutations are caught by version tracking even
        when the runtime was never registered with the maintainer."""
        maintainer = build_state(seed=71)
        runtimes = [
            FragmentRuntime(f, i, compiled=True)
            for f, i in zip(maintainer.fragments, maintainer.indexes)
        ]
        query = sgkq(["w0"], 3.0)
        self._merged(runtimes, query)  # memoise kernels

        node = next(iter(maintainer.network.object_nodes()))
        maintainer.add_keyword(node, "w0")
        oracle = CentralizedEvaluator(maintainer.network)
        # Keyword ops mutate the shared index objects in place, so the
        # unbound runtimes notice the version bump on their next query.
        assert self._merged(runtimes, query) == oracle.results(query)


class TestWithNodeKeywords:
    def test_shares_structure(self):
        net = make_random_network(seed=60)
        node = next(iter(net.object_nodes()))
        derived = net.with_node_keywords(node, {"replaced"})
        assert derived.keywords(node) == {"replaced"}
        assert list(derived.edges()) == list(net.edges())
        assert net.keywords(node) != {"replaced"}  # original untouched

    def test_junction_rejected(self):
        net = make_random_network(seed=61)
        junction = next(n for n in net.nodes() if not net.is_object(n))
        with pytest.raises(GraphError):
            net.with_node_keywords(junction, {"x"})

    def test_clearing_junction_keywords_allowed(self):
        net = make_random_network(seed=62)
        junction = next(n for n in net.nodes() if not net.is_object(n))
        derived = net.with_node_keywords(junction, ())
        assert derived.keywords(junction) == frozenset()
