"""Round-trip and differential tests for the binary wire protocol.

Two contracts:

* **round-trip** — every frame type's ``encode_*``/``decode_*`` pair is
  an identity over hypothesis-generated payloads, with floats (radii,
  timings) surviving bit-exactly — infinities included;
* **differential** — the NDJSON and binary protocol paths, driven
  against the *same* cluster, produce identical QueryAnswers for the
  same query stream.  Combined with the round-trip property this proves
  the binary path adds speed, not semantics.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.core.dfunction import DExpression, SetOp
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource, QClassQuery
from repro.partition import BfsPartitioner
from repro.serve import (
    BinaryServeClient,
    PipelinedCluster,
    ServeClient,
    ServeConfig,
    serve_in_thread,
    generate_expressions,
    wire,
)

from helpers import make_random_network

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=0, max_size=24
)
_keyword = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=24
)
_node_id = st.integers(min_value=0, max_value=2**64 - 1)
_radius = st.floats(min_value=0.0, allow_nan=False, allow_infinity=True)
_finite = st.floats(allow_nan=False, allow_infinity=False)
_request_id = st.integers(min_value=0, max_value=2**64 - 1)


@st.composite
def _queries(draw) -> QClassQuery:
    num_terms = draw(st.integers(min_value=1, max_value=5))
    terms = tuple(
        CoverageTerm(
            draw(
                st.one_of(
                    _keyword.map(KeywordSource),
                    _node_id.map(NodeSource),
                )
            ),
            draw(_radius),
        )
        for _ in range(num_terms)
    )
    leaf = st.integers(min_value=0, max_value=num_terms - 1).map(
        lambda i: DExpression(index=i)
    )
    expression = draw(
        st.recursive(
            leaf,
            lambda children: st.tuples(
                children, children, st.sampled_from(list(SetOp))
            ).map(lambda t: DExpression(op=t[2], left=t[0], right=t[1])),
            max_leaves=6,
        )
    )
    return QClassQuery(terms, expression, draw(_text))


_op_records = st.one_of(
    st.fixed_dictionaries(
        {
            "op": st.sampled_from(["add_keyword", "remove_keyword"]),
            "node": _node_id,
            "keyword": _keyword,
        }
    ),
    st.fixed_dictionaries(
        {
            "op": st.just("set_edge_weight"),
            "u": _node_id,
            "v": _node_id,
            "weight": _finite,
        }
    ),
)


def _decode_one(data: bytes) -> tuple[int, bytes]:
    decoder = wire.FrameDecoder()
    decoder.feed(data)
    frame = decoder.next_frame()
    assert frame is not None
    assert decoder.buffered == 0
    return frame


# ----------------------------------------------------------------------
# Round trips, one per frame type
# ----------------------------------------------------------------------
class TestRoundTrips:
    @given(request_id=_request_id, query=_queries())
    def test_query_payload(self, request_id, query):
        payload = wire.encode_query_payload(request_id, query)
        back_id, back = wire.decode_query_payload(payload)
        assert back_id == request_id
        assert back == query  # dataclass equality: bit-exact radii and all

    @given(request_id=_request_id, query=_queries())
    def test_query_frame_through_decoder(self, request_id, query):
        data = wire.encode_frame(
            wire.FRAME_QUERY, wire.encode_query_payload(request_id, query)
        )
        frame_type, payload = _decode_one(data)
        assert frame_type == wire.FRAME_QUERY
        assert wire.decode_query_payload(payload) == (request_id, query)

    @given(
        request_id=_request_id,
        nodes=st.sets(_node_id, max_size=50),
        degraded=st.booleans(),
        latency_ms=_finite,
        wall_ms=_finite,
        makespan_ms=_finite,
        message_bytes=st.integers(min_value=0, max_value=2**64 - 1),
    )
    def test_answer(
        self, request_id, nodes, degraded, latency_ms, wall_ms, makespan_ms,
        message_bytes,
    ):
        frame_type, payload = _decode_one(
            wire.encode_answer(
                request_id,
                nodes,
                degraded=degraded,
                latency_ms=latency_ms,
                wall_ms=wall_ms,
                makespan_ms=makespan_ms,
                message_bytes=message_bytes,
            )
        )
        assert frame_type == wire.FRAME_ANSWER
        reply = wire.decode_answer(payload)
        assert reply["id"] == request_id
        assert reply["ok"] is True
        assert reply["nodes"] == sorted(nodes)
        assert reply["degraded"] is degraded
        assert reply["timing"] == {
            "latency_ms": latency_ms,
            "wall_ms": wall_ms,
            "makespan_ms": makespan_ms,
            "message_bytes": message_bytes,
        }

    @given(
        request_id=st.one_of(st.none(), _request_id),
        error=_keyword,
        detail=_text,
    )
    def test_error(self, request_id, error, detail):
        frame_type, payload = _decode_one(wire.encode_error(request_id, error, detail))
        assert frame_type == wire.FRAME_ERROR
        reply = wire.decode_error(payload)
        assert reply["ok"] is False
        assert reply["error"] == error
        if request_id is None:
            assert reply["id"] is None
        else:
            assert reply["id"] == request_id
        assert reply.get("detail", "") == detail

    @given(
        payload=st.dictionaries(
            st.text(max_size=8), st.one_of(_text, st.integers(), st.booleans()),
            max_size=5,
        )
    )
    def test_json_frame(self, payload):
        frame_type, raw = _decode_one(wire.encode_json_frame(payload))
        assert frame_type == wire.FRAME_JSON
        assert wire.decode_json_payload(raw) == payload

    @given(entries=st.lists(st.tuples(_request_id, _queries()), max_size=6))
    def test_batch(self, entries):
        data = wire.encode_batch(
            [(rid, wire.encode_query_body(q)) for rid, q in entries]
        )
        frame_type, payload = _decode_one(data)
        assert frame_type == wire.FRAME_BATCH
        assert wire.decode_batch(payload) == entries

    @given(request_id=_request_id, records=st.lists(_op_records, max_size=8))
    def test_update(self, request_id, records):
        frame_type, payload = _decode_one(wire.encode_update(request_id, records))
        assert frame_type == wire.FRAME_UPDATE
        assert wire.decode_update(payload) == (request_id, records, None)

    @given(
        request_id=_request_id,
        records=st.lists(_op_records, max_size=8),
        key=st.text(min_size=1, max_size=64),
    )
    def test_update_idempotency_key(self, request_id, records, key):
        frame_type, payload = _decode_one(
            wire.encode_update(request_id, records, idempotency_key=key)
        )
        assert frame_type == wire.FRAME_UPDATE
        assert wire.decode_update(payload) == (request_id, records, key)

    @given(
        request_id=_request_id,
        epoch=st.integers(min_value=0, max_value=2**64 - 1),
        applied=st.integers(min_value=0, max_value=2**32 - 1),
        staleness_ms=_finite,
    )
    def test_update_ack(self, request_id, epoch, applied, staleness_ms):
        frame_type, payload = _decode_one(
            wire.encode_update_ack(
                request_id, epoch=epoch, applied=applied, staleness_ms=staleness_ms
            )
        )
        assert frame_type == wire.FRAME_UPDATE_ACK
        assert wire.decode_update_ack(payload) == {
            "id": request_id,
            "ok": True,
            "epoch": epoch,
            "applied": applied,
            "staleness_ms": staleness_ms,
        }

    @given(features=st.integers(min_value=0, max_value=255))
    def test_preamble_and_hello(self, features):
        assert wire.decode_preamble(wire.encode_preamble(features)) == features
        frame_type, payload = _decode_one(wire.encode_hello(features))
        assert frame_type == wire.FRAME_HELLO
        assert wire.decode_hello(payload) == (wire.WIRE_VERSION, features)

    @given(
        request_id=_request_id,
        query=_queries(),
        sent_at=_finite,
    )
    def test_pipe_query(self, request_id, query, sent_at):
        kind, body, back_sent = wire.loads_pipe(
            wire.dumps_pipe_query(request_id, query, sent_at)
        )
        assert kind == "query"
        assert body == (request_id, query, None)
        assert back_sent == sent_at

    @given(
        request_id=_request_id,
        reply=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.sets(_node_id, max_size=20),
                _finite,
            ),
            max_size=4,
        ),
        elapsed=_finite,
        sent_at=_finite,
    )
    def test_pipe_results(self, request_id, reply, elapsed, sent_at):
        kind, body, back_sent = wire.loads_pipe(
            wire.dumps_pipe_results(request_id, reply, elapsed, sent_at)
        )
        assert kind == "results"
        assert body == (request_id, reply, elapsed)
        assert back_sent == sent_at

    @given(
        frames=st.lists(
            st.tuples(_request_id, _queries()).map(
                lambda t: wire.encode_frame(
                    wire.FRAME_QUERY, wire.encode_query_payload(*t)
                )
            ),
            min_size=1,
            max_size=5,
        ),
        data=st.data(),
    )
    def test_decoder_reassembles_arbitrary_chunking(self, frames, data):
        """FrameDecoder yields the same frames however the stream is cut."""
        stream = b"".join(frames)
        decoder = wire.FrameDecoder()
        out = []
        pos = 0
        while pos < len(stream):
            step = data.draw(st.integers(min_value=1, max_value=len(stream) - pos))
            decoder.feed(stream[pos : pos + step])
            pos += step
            while (frame := decoder.next_frame()) is not None:
                out.append(wire.encode_frame(*frame))
        assert out == frames
        assert decoder.buffered == 0


# ----------------------------------------------------------------------
# Differential: NDJSON vs binary on one cluster
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def deployment():
    net = make_random_network(seed=660, num_junctions=28, num_objects=14, vocabulary=5)
    partition = BfsPartitioner(seed=7).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    cluster = PipelinedCluster.start(fragments, indexes, num_machines=2, use_shm=True)
    try:
        with serve_in_thread(cluster, ServeConfig(max_inflight=32)) as server:
            yield net, server
    finally:
        cluster.shutdown()


class TestDifferential:
    def test_binary_and_ndjson_answers_are_identical(self, deployment):
        net, server = deployment
        expressions = generate_expressions(net, count=24, radius=6.0, seed=9)
        with ServeClient(server.host, server.port) as ndjson, BinaryServeClient(
            server.host, server.port
        ) as binary:
            for expression in expressions:
                a = ndjson.query(expression)
                b = binary.query(expression)
                assert a["ok"] and b["ok"], (a, b)
                assert a["nodes"] == b["nodes"], expression
                assert a["degraded"] == b["degraded"]

    def test_batched_answers_match_singles(self, deployment):
        net, server = deployment
        expressions = generate_expressions(net, count=16, radius=6.0, seed=10)
        with BinaryServeClient(server.host, server.port) as binary:
            singles = [binary.query(e)["nodes"] for e in expressions]
            prepared = [binary.prepare(e) for e in expressions]
            batched = binary.query_batch(prepared)
            assert [reply["nodes"] for reply in batched] == singles

    def test_admin_ops_ride_json_frames(self, deployment):
        _net, server = deployment
        with BinaryServeClient(server.host, server.port) as binary:
            reply = binary.request({"op": "ping"})
            assert reply["ok"] and reply["pong"]
            stats = binary.stats()
            assert stats["counters"]["binary_connections"] >= 1

    def test_rejects_version_mismatch(self, deployment):
        import socket

        _net, server = deployment
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(wire.MAGIC + bytes((99, 0)))
            decoder = wire.FrameDecoder()
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                decoder.feed(chunk)
            frame = decoder.next_frame()
            assert frame is not None
            frame_type, payload = frame
            assert frame_type == wire.FRAME_ERROR
            assert wire.decode_error(payload)["error"] == "wire"


class TestLimits:
    def test_oversized_frame_rejected_at_encode(self):
        with pytest.raises(wire.WireProtocolError, match="exceeds"):
            wire.encode_frame(wire.FRAME_JSON, b"x" * wire.MAX_FRAME_BYTES)

    def test_decoder_rejects_adversarial_length(self):
        decoder = wire.FrameDecoder()
        decoder.feed(wire.LENGTH_PREFIX.pack(2**31) + b"\x05")
        with pytest.raises(wire.WireProtocolError, match="declared frame length"):
            decoder.next_frame()

    def test_decoder_rejects_zero_length(self):
        decoder = wire.FrameDecoder()
        decoder.feed(wire.LENGTH_PREFIX.pack(0))
        with pytest.raises(wire.WireProtocolError, match="type byte"):
            decoder.next_frame()

    @settings(max_examples=25)
    @given(query=_queries())
    def test_trailing_garbage_rejected(self, query):
        payload = wire.encode_query_payload(7, query) + b"\x00"
        with pytest.raises(wire.WireProtocolError, match="trailing garbage"):
            wire.decode_query_payload(payload)
