"""Tests for the explain mode (distance-annotated query results)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import DisksEngine, EngineConfig, sgkq, sgkq_extended
from repro.partition import BfsPartitioner

from helpers import make_random_network, oracle_distances


def build_engine(seed: int, k: int = 3):
    net = make_random_network(seed=seed, num_junctions=20, num_objects=10, vocabulary=4)
    engine = DisksEngine.build(
        net,
        EngineConfig(
            num_fragments=k,
            lambda_factor=None,
            max_radius=math.inf,
            partitioner=BfsPartitioner(seed=seed),
        ),
    )
    return net, engine


class TestExplain:
    def test_nodes_match_execute(self):
        net, engine = build_engine(seed=70)
        query = sgkq(["w0", "w1"], 4.0)
        explained = engine.explain(query)
        assert set(explained) == set(engine.results(query))

    def test_distances_are_exact(self):
        net, engine = build_engine(seed=71)
        query = sgkq(["w0", "w1"], 4.0)
        explained = engine.explain(query)
        for i, keyword in enumerate(["w0", "w1"]):
            seeds = [n for n in net.nodes() if keyword in net.keywords(n)]
            oracle = oracle_distances(net, seeds)
            for node, distances in explained.items():
                assert distances[i] is not None  # SGKQ: inside every coverage
                assert distances[i] == pytest.approx(oracle[node])
                assert distances[i] <= 4.0

    def test_subtraction_terms_are_none(self):
        net, engine = build_engine(seed=72)
        query = sgkq_extended(
            all_within=[("w0", 5.0)], none_within=[("w1", 1.0)]
        )
        explained = engine.explain(query)
        for _node, distances in explained.items():
            assert distances[0] is not None
            # Result nodes are outside the subtracted coverage.
            assert distances[1] is None or distances[1] > 1.0

    def test_union_terms_may_be_partial(self):
        net, engine = build_engine(seed=73)
        query = sgkq_extended(any_within=[("w0", 2.0), ("w1", 2.0)])
        explained = engine.explain(query)
        assert explained, "union query should have results"
        for _node, distances in explained.items():
            assert any(d is not None for d in distances)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500), radius=st.floats(min_value=0.5, max_value=6.0))
    def test_explain_consistent_with_results_property(self, seed, radius):
        net, engine = build_engine(seed=seed)
        query = sgkq(sorted(net.all_keywords())[:1], radius)
        explained = engine.explain(query)
        assert set(explained) == set(engine.results(query))
        for _node, (distance,) in explained.items():
            assert distance is not None and distance <= radius
