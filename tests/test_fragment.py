"""Tests for :mod:`repro.core.fragment` (§3.2 notation)."""

from __future__ import annotations

import pytest

from repro.core import build_fragments
from repro.partition import BfsPartitioner, Partition

from helpers import make_random_network


@pytest.fixture()
def net_and_fragments():
    net = make_random_network(seed=77, num_junctions=25, num_objects=10, vocabulary=5)
    partition = BfsPartitioner(seed=2).partition(net, 3)
    return net, partition, build_fragments(net, partition)


class TestFragmentStructure:
    def test_members_partition_the_nodes(self, net_and_fragments):
        net, _partition, fragments = net_and_fragments
        union = set()
        for fragment in fragments:
            assert not (union & fragment.members), "fragments must be node-disjoint"
            union |= fragment.members
        assert union == set(net.nodes())

    def test_local_adjacency_is_internal_only(self, net_and_fragments):
        net, _partition, fragments = net_and_fragments
        for fragment in fragments:
            for node, edges in fragment.adjacency.items():
                assert node in fragment.members
                for v, w in edges:
                    assert v in fragment.members
                    assert net.edge_weight(node, v) == w

    def test_local_adjacency_complete(self, net_and_fragments):
        """Every internal edge of the network appears in its fragment."""
        net, partition, fragments = net_and_fragments
        for u, v, w in net.edges():
            fu, fv = partition.fragment_of(u), partition.fragment_of(v)
            if fu == fv:
                assert (v, w) in fragments[fu].adjacency[u]
                assert (u, w) in fragments[fu].adjacency[v]

    def test_portals_are_exactly_cross_edge_endpoints(self, net_and_fragments):
        net, partition, fragments = net_and_fragments
        expected: dict[int, set[int]] = {f.fragment_id: set() for f in fragments}
        for u, v, _w in net.edges():
            fu, fv = partition.fragment_of(u), partition.fragment_of(v)
            if fu != fv:
                expected[fu].add(u)
                expected[fv].add(v)
        for fragment in fragments:
            assert fragment.portals == expected[fragment.fragment_id]

    def test_keyword_index_is_local(self, net_and_fragments):
        net, _partition, fragments = net_and_fragments
        for fragment in fragments:
            for kw in fragment.keyword_index.local_keywords():
                for node in fragment.keyword_index.local_nodes_with(kw):
                    assert node in fragment.members
                    assert kw in net.keywords(node)

    def test_counts(self, net_and_fragments):
        net, _partition, fragments = net_and_fragments
        assert sum(f.num_members for f in fragments) == net.num_nodes
        internal = sum(f.num_local_edges for f in fragments)
        cut = sum(
            1
            for u, v, _w in net.edges()
            if _partition_of(fragments, u) != _partition_of(fragments, v)
        )
        assert internal + cut == net.num_edges

    def test_contains_and_local_neighbors(self, net_and_fragments):
        _net, _partition, fragments = net_and_fragments
        fragment = fragments[0]
        member = next(iter(fragment.members))
        assert fragment.contains(member)
        assert fragment.local_neighbors(member) == fragment.adjacency.get(member, ())
        assert not fragment.contains(-1)

    def test_single_fragment_has_no_portals(self):
        net = make_random_network(seed=5)
        (fragment,) = build_fragments(
            net, Partition.from_assignment([0] * net.num_nodes, 1)
        )
        assert fragment.portals == frozenset()
        assert fragment.num_members == net.num_nodes


def _partition_of(fragments, node: int) -> int:
    for fragment in fragments:
        if node in fragment.members:
            return fragment.fragment_id
    raise AssertionError(f"node {node} in no fragment")


class TestDirectedFragments:
    def test_directed_portals_include_in_edges(self):
        net = make_random_network(seed=11, directed=True)
        partition = BfsPartitioner(seed=1).partition(net, 2)
        fragments = build_fragments(net, partition)
        for fragment in fragments:
            for node in fragment.members:
                crosses = any(
                    partition.fragment_of(v) != fragment.fragment_id
                    for v, _w in net.neighbors(node)
                ) or any(
                    partition.fragment_of(v) != fragment.fragment_id
                    for v, _w in net.in_neighbors(node)
                )
                assert (node in fragment.portals) == crosses
