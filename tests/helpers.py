"""Shared test utilities: random network factories and oracles.

The factory builds small connected keyword-labelled road networks from a
seed (spanning tree + extra edges), which both plain tests and
hypothesis properties use (hypothesis draws the seed/size knobs).  The
oracle functions compute ground-truth distances/coverages with networkx
or brute-force Dijkstra, independently of the library's own search code.
"""

from __future__ import annotations

import math
import random

import networkx as nx

from repro.core.queries import CoverageTerm, KeywordSource, NodeSource
from repro.graph.build import RoadNetworkBuilder
from repro.graph.road_network import RoadNetwork


def make_random_network(
    seed: int,
    num_junctions: int = 20,
    num_objects: int = 10,
    vocabulary: int = 6,
    extra_edge_prob: float = 0.15,
    directed: bool = False,
    max_keywords_per_object: int = 3,
) -> RoadNetwork:
    """A random connected keyword-labelled network, deterministic per seed."""
    rng = random.Random(seed)
    total = num_junctions + num_objects
    builder = RoadNetworkBuilder(directed=directed)
    object_slots = set(rng.sample(range(total), num_objects)) if num_objects else set()
    vocab = [f"w{i}" for i in range(vocabulary)]
    for node in range(total):
        pos = (rng.uniform(0, 10), rng.uniform(0, 10))
        if node in object_slots:
            count = rng.randint(1, max_keywords_per_object)
            builder.add_object(rng.sample(vocab, min(count, len(vocab))), pos)
        else:
            builder.add_junction(pos)

    # Random spanning tree keeps it connected.
    order = list(range(total))
    rng.shuffle(order)
    for i in range(1, total):
        u, v = order[i], order[rng.randrange(i)]
        w = rng.uniform(0.5, 3.0)
        builder.add_edge(u, v, w, keep_min=True)
        if directed:
            builder.add_edge(v, u, w, keep_min=True)
    for u in range(total):
        for v in range(u + 1, total):
            if rng.random() < extra_edge_prob and not builder.has_edge(u, v):
                builder.add_edge(u, v, rng.uniform(0.5, 4.0))
                if directed and rng.random() < 0.8:
                    builder.add_edge(v, u, rng.uniform(0.5, 4.0))
    return builder.build()


def random_partition_assignment(seed: int, num_nodes: int, k: int) -> list[int]:
    """A random assignment guaranteed to leave no fragment empty."""
    rng = random.Random(seed)
    assignment = [rng.randrange(k) for _ in range(num_nodes)]
    nodes = rng.sample(range(num_nodes), k)
    for frag, node in enumerate(nodes):
        assignment[node] = frag
    return assignment


def to_networkx(network: RoadNetwork) -> "nx.Graph | nx.DiGraph":
    """Convert to a networkx graph for oracle computations."""
    graph = nx.DiGraph() if network.directed else nx.Graph()
    graph.add_nodes_from(network.nodes())
    for u, v, w in network.edges():
        graph.add_edge(u, v, weight=w)
    return graph


def oracle_distances(
    network: RoadNetwork, sources: list[int], bound: float = math.inf
) -> dict[int, float]:
    """Multi-source shortest distances via networkx (forward direction)."""
    graph = to_networkx(network)
    result: dict[int, float] = {}
    for source in sources:
        lengths = nx.single_source_dijkstra_path_length(graph, source, weight="weight")
        for node, dist in lengths.items():
            if dist <= bound and dist < result.get(node, math.inf):
                result[node] = dist
    return result


def oracle_coverage(network: RoadNetwork, term: CoverageTerm) -> set[int]:
    """Ground-truth coverage of one term (forward-direction convention)."""
    source = term.source
    if isinstance(source, KeywordSource):
        seeds = [n for n in network.nodes() if source.keyword in network.keywords(n)]
    else:
        assert isinstance(source, NodeSource)
        seeds = [source.node]
    if not seeds:
        return set()
    return set(oracle_distances(network, seeds, term.radius))
