"""repro.ha serving tier: placement, routing, failover, replicated applies.

The contract: an :class:`HACluster` with replication factor >= 2 answers
every query bit-identically to a centralized oracle before, during, and
after losing a worker — failover re-routes the dead machine's tasks to
surviving replicas instead of degrading the answer.
"""

from __future__ import annotations

import math
import time

import pytest

from repro import sgkq
from repro.baselines import CentralizedEvaluator
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.dist import ReplicaPlacement
from repro.exceptions import ClusterError
from repro.ha import HACluster
from repro.live import EpochManager
from repro.partition import BfsPartitioner
from repro.workloads import UpdateGenConfig, UpdateStreamGenerator

from helpers import make_random_network


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=650, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=6).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, partition, fragments, indexes


def probe_queries(network):
    keywords = sorted(network.all_keywords())[:2]
    for radius in (1.5, 4.0):
        yield sgkq(keywords, radius)


def wait_until_dead(cluster, machine_id, timeout_seconds=10.0):
    deadline = time.time() + timeout_seconds
    while machine_id not in cluster.dead_machines:
        if time.time() > deadline:  # pragma: no cover - diagnostic
            raise AssertionError(f"worker {machine_id} death was never detected")
        time.sleep(0.01)


class TestReplicaPlacement:
    def test_chained_layout_is_anti_affine(self):
        placement = ReplicaPlacement.chained(8, 4, 3)
        for fid, machines in enumerate(placement.replicas):
            assert machines == tuple((fid + j) % 4 for j in range(3))
            assert len(set(machines)) == 3
        for machine in range(4):
            assert set(placement.fragments_of(machine)) == {
                fid for fid in range(8) if machine in placement.replicas[fid]
            }
        assert placement.assignments() == [
            list(placement.fragments_of(machine)) for machine in range(4)
        ]

    def test_replication_factor_bounds(self):
        with pytest.raises(ClusterError, match="must be in"):
            ReplicaPlacement.chained(4, 2, 3)
        with pytest.raises(ClusterError, match="at least one machine"):
            ReplicaPlacement.chained(4, 0, 1)

    def test_load_policy_prefers_least_busy(self):
        placement = ReplicaPlacement.chained(4, 4, 2)
        plan = placement.plan(range(4), alive=range(4), load={0: 5.0})
        # Fragment 0 lives on {0, 1}; machine 0 is drowning, so 1 wins.
        assert plan[0] == 1
        assert set(plan) == {0, 1, 2, 3}

    def test_load_policy_spreads_an_even_start(self):
        placement = ReplicaPlacement.chained(4, 2, 2)
        plan = placement.plan(range(4), alive=range(2))
        # The plan's own +1 per assignment alternates equal machines.
        assert sorted(plan.values()) == [0, 0, 1, 1]

    def test_rr_policy_rotates_with_start(self):
        placement = ReplicaPlacement.chained(4, 2, 2)
        plans = {
            tuple(sorted(placement.plan(range(4), alive=range(2),
                                        policy="rr", start=s).items()))
            for s in range(2)
        }
        assert len(plans) == 2

    def test_unknown_policy_rejected(self):
        placement = ReplicaPlacement.chained(2, 2, 1)
        with pytest.raises(ClusterError, match="unknown routing policy"):
            placement.plan([0], alive=[0, 1], policy="weird")

    def test_total_failure_and_unreplicated_loss(self):
        placement = ReplicaPlacement.chained(4, 4, 1)
        with pytest.raises(ClusterError, match="every machine has failed"):
            placement.plan(range(4), alive=[])
        with pytest.raises(ClusterError, match="fragment 2 has no alive replica"):
            placement.plan(range(4), alive=[0, 1, 3])


class TestHAClusterServing:
    def test_exact_answers_across_worker_loss(self, built):
        net, _partition, fragments, indexes = built
        oracle = CentralizedEvaluator(net)
        queries = list(probe_queries(net))
        with HACluster.start(
            fragments, indexes, num_machines=4, replication_factor=2
        ) as cluster:
            assert cluster.replication_factor == 2
            assert not cluster.degraded
            for query in queries:
                assert cluster.execute(query).result_nodes == oracle.results(query)

            assert cluster.kill_worker(1) is True
            wait_until_dead(cluster, 1)
            # Every fragment still has a live replica: answers stay exact.
            for query in queries:
                assert cluster.execute(query).result_nodes == oracle.results(query)
            assert not cluster.degraded
            stats = cluster.ha_stats()
            assert stats["machines_alive"] == 3
            assert stats["dead_machines"] == [1]
            assert stats["replicas_alive_min"] == 1
            assert stats["failovers"] == 1
            assert cluster.kill_worker(1) is False
            with pytest.raises(ClusterError, match="no machine 99"):
                cluster.kill_worker(99)

            # Losing the neighbour too orphans the fragment they shared.
            cluster.kill_worker(2)
            wait_until_dead(cluster, 2)
            assert cluster.degraded
            stats = cluster.ha_stats()
            assert stats["fragments_unservable"] >= 1
            # The cluster keeps serving what it can rather than erroring.
            for query in queries:
                served = cluster.execute(query).result_nodes
                assert served <= oracle.results(query)

    @pytest.mark.parametrize("routing", ["load", "rr"])
    def test_shm_replica_groups_stay_exact(self, built, routing):
        net, _partition, fragments, indexes = built
        oracle = CentralizedEvaluator(net)
        queries = list(probe_queries(net))
        with HACluster.start(
            fragments,
            indexes,
            num_machines=3,
            replication_factor=2,
            routing=routing,
            use_shm=True,
        ) as cluster:
            for query in queries:
                assert cluster.execute(query).result_nodes == oracle.results(query)
            cluster.kill_worker(0)
            wait_until_dead(cluster, 0)
            for query in queries:
                assert cluster.execute(query).result_nodes == oracle.results(query)

    @pytest.mark.parametrize("use_shm", [False, True])
    def test_replicated_apply_reaches_every_replica(self, built, use_shm):
        net, partition, fragments, indexes = built
        manager = EpochManager(
            network=net,
            partition=partition,
            fragments=list(fragments),
            indexes=list(indexes),
        )
        ops = UpdateStreamGenerator(net, UpdateGenConfig(seed=31)).ops(10)
        swap = manager.apply(ops)
        delta = list(manager.state.delta_from(swap.changed_fragments).values())
        oracle = CentralizedEvaluator(manager.state.network)
        with HACluster.start(
            fragments,
            indexes,
            num_machines=4,
            replication_factor=2,
            use_shm=use_shm,
        ) as cluster:
            summary = cluster.apply_updates(swap.epoch, delta)
            assert summary["epoch"] == swap.epoch
            assert cluster.current_epoch == swap.epoch
            # Every alive machine hosting a changed fragment acked.
            expected = sorted(
                {
                    machine
                    for fragment, _index in delta
                    for machine in cluster.placement.machines_of(fragment.fragment_id)
                }
            )
            assert summary["acked_machines"] == expected
            for query in probe_queries(manager.state.network):
                assert cluster.execute(query).result_nodes == oracle.results(query)
            with pytest.raises(ClusterError, match="epoch must advance"):
                cluster.apply_updates(swap.epoch, delta)

    def test_total_cluster_loss_is_an_error(self, built):
        _net, _partition, fragments, indexes = built
        query = next(probe_queries(_net))
        with HACluster.start(
            fragments, indexes, num_machines=2, replication_factor=2
        ) as cluster:
            for machine in range(2):
                cluster.kill_worker(machine)
                wait_until_dead(cluster, machine)
            with pytest.raises(ClusterError, match="every worker has died"):
                cluster.execute(query)
