"""Unit tests for :mod:`repro.graph.build` (builder + object attachment)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import EdgeError, GraphError, NodeNotFoundError
from repro.graph import NodeKind, RoadNetworkBuilder
from repro.graph.build import ObjectSpec, attach_objects


class TestBuilderNodes:
    def test_ids_are_sequential(self):
        b = RoadNetworkBuilder()
        assert b.add_junction() == 0
        assert b.add_object({"x"}) == 1
        assert b.num_nodes == 2

    def test_junction_keywords_rejected(self):
        b = RoadNetworkBuilder()
        with pytest.raises(GraphError):
            b.add_node(NodeKind.JUNCTION, {"nope"})

    def test_set_keywords(self):
        b = RoadNetworkBuilder()
        node = b.add_object({"old"})
        b.set_keywords(node, {"new", "newer"})
        net = b.build()
        assert net.keywords(node) == {"new", "newer"}

    def test_set_keywords_on_junction_rejected(self):
        b = RoadNetworkBuilder()
        node = b.add_junction()
        with pytest.raises(GraphError):
            b.set_keywords(node, {"x"})

    def test_set_keywords_unknown_node(self):
        b = RoadNetworkBuilder()
        with pytest.raises(NodeNotFoundError):
            b.set_keywords(5, {"x"})


class TestBuilderEdges:
    def test_positive_weight_required(self):
        b = RoadNetworkBuilder()
        b.add_junction()
        b.add_junction()
        for bad in (0.0, -1.0, math.nan, math.inf):
            with pytest.raises(EdgeError):
                b.add_edge(0, 1, bad)

    def test_self_loop_rejected(self):
        b = RoadNetworkBuilder()
        b.add_junction()
        with pytest.raises(EdgeError):
            b.add_edge(0, 0, 1.0)

    def test_duplicate_rejected_by_default(self):
        b = RoadNetworkBuilder()
        b.add_junction()
        b.add_junction()
        b.add_edge(0, 1, 1.0)
        with pytest.raises(EdgeError):
            b.add_edge(1, 0, 2.0)  # same undirected edge

    def test_duplicate_keep_min(self):
        b = RoadNetworkBuilder()
        b.add_junction()
        b.add_junction()
        b.add_edge(0, 1, 3.0)
        b.add_edge(1, 0, 2.0, keep_min=True)
        assert b.build().edge_weight(0, 1) == 2.0

    def test_directed_antiparallel_arcs_are_distinct(self):
        b = RoadNetworkBuilder(directed=True)
        b.add_junction()
        b.add_junction()
        b.add_edge(0, 1, 1.0)
        b.add_edge(1, 0, 2.0)
        net = b.build()
        assert net.edge_weight(0, 1) == 1.0
        assert net.edge_weight(1, 0) == 2.0

    def test_unknown_endpoint(self):
        b = RoadNetworkBuilder()
        b.add_junction()
        with pytest.raises(NodeNotFoundError):
            b.add_edge(0, 7, 1.0)

    def test_mixed_positions_rejected(self):
        b = RoadNetworkBuilder()
        b.add_junction(position=(0, 0))
        b.add_junction()
        b.add_edge(0, 1, 1.0)
        with pytest.raises(GraphError):
            b.build()


class TestAttachObjects:
    def _road_builder(self, size: int = 5) -> RoadNetworkBuilder:
        b = RoadNetworkBuilder()
        for i in range(size):
            b.add_junction(position=(float(i), 0.0))
        for i in range(size - 1):
            b.add_edge(i, i + 1, 1.0)
        return b

    def test_object_connects_to_nearest(self):
        b = self._road_builder()
        created = attach_objects(b, [ObjectSpec((2.2, 1.0), {"shop"})])
        net = b.build()
        (obj,) = created
        assert net.is_object(obj)
        assert net.has_edge(obj, 2)
        assert net.edge_weight(obj, 2) == pytest.approx(math.hypot(0.2, 1.0))

    def test_colocated_object_gets_positive_weight(self):
        b = self._road_builder()
        (obj,) = attach_objects(b, [ObjectSpec((3.0, 0.0), {"shop"})])
        net = b.build()
        assert net.edge_weight(obj, 3) > 0

    def test_order_preserved(self):
        b = self._road_builder()
        created = attach_objects(
            b, [ObjectSpec((0.0, 1.0), {"a"}), ObjectSpec((4.0, 1.0), {"b"})]
        )
        net = b.build()
        assert net.keywords(created[0]) == {"a"}
        assert net.keywords(created[1]) == {"b"}

    def test_requires_positioned_roads(self):
        b = RoadNetworkBuilder()
        b.add_junction()
        with pytest.raises(GraphError):
            attach_objects(b, [ObjectSpec((0, 0), {"x"})])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), count=st.integers(1, 12))
    def test_nearest_matches_linear_scan(self, seed, count):
        """The grid index must agree with brute-force nearest neighbour."""
        rng = random.Random(seed)
        b = RoadNetworkBuilder()
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(30)]
        for p in points:
            b.add_junction(position=p)
        for i in range(29):
            b.add_edge(i, i + 1, 1.0)
        specs = [
            ObjectSpec((rng.uniform(-1, 11), rng.uniform(-1, 11)), {"k"})
            for _ in range(count)
        ]
        created = attach_objects(b, specs)
        net = b.build()
        for obj, spec in zip(created, specs):
            ((attached, weight),) = [
                (v, w) for v, w in net.neighbors(obj)
            ]
            best = min(
                math.hypot(spec.position[0] - x, spec.position[1] - y)
                for x, y in points
            )
            assert weight == pytest.approx(best, abs=1e-9) or weight == pytest.approx(
                max(best, 1e-9)
            )
