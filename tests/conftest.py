"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import DisksEngine, EngineConfig
from repro.baselines import CentralizedEvaluator
from repro.graph import GeneratorConfig, generate_road_network
from repro.workloads import load_dataset, toy_figure1

from helpers import make_random_network


@pytest.fixture(scope="session")
def figure1():
    """The paper's Fig. 1 five-node network."""
    return toy_figure1()


@pytest.fixture(scope="session")
def small_network():
    """A 60-node random keyword network used across unit tests."""
    return make_random_network(seed=100, num_junctions=40, num_objects=20, vocabulary=8)

@pytest.fixture(scope="session")
def grid_network():
    """A keyword-free generated grid for partitioner/search tests."""
    return generate_road_network(GeneratorConfig(kind="grid", num_nodes=400, seed=9))


@pytest.fixture(scope="session")
def aus_tiny():
    """The aus_tiny preset dataset (memoised globally)."""
    return load_dataset("aus_tiny")


@pytest.fixture(scope="session")
def tiny_engine(aus_tiny):
    """A built engine over aus_tiny with 4 fragments."""
    return DisksEngine.build(
        aus_tiny.network, EngineConfig(num_fragments=4, lambda_factor=12.0)
    )


@pytest.fixture(scope="session")
def tiny_oracle(aus_tiny):
    """Centralized ground truth over aus_tiny."""
    return CentralizedEvaluator(aus_tiny.network)
