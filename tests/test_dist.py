"""Tests for the distributed runtime: messages, ledger, cluster, parallel."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    NPDBuildConfig,
    build_all_indexes,
    build_fragments,
    rkq,
    sgkq,
)
from repro.core.coverage import FragmentRuntime
from repro.baselines import CentralizedEvaluator
from repro.dist import (
    Coordinator,
    NetworkModel,
    QueryTaskMessage,
    SimulatedCluster,
    TaskResultMessage,
    TrafficLedger,
    WorkerMachine,
)
from repro.dist.network import COORDINATOR_ID
from repro.dist.parallel import parallel_build_indexes, parallel_execute_query
from repro.exceptions import ClusterError, CommunicationViolationError
from repro.partition import BfsPartitioner

from helpers import make_random_network


@pytest.fixture(scope="module")
def cluster_case():
    net = make_random_network(seed=200, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=2).partition(net, 3)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, fragments, indexes


class TestMessages:
    def test_task_message_size_scales_with_terms(self):
        small = QueryTaskMessage(COORDINATOR_ID, 0, sgkq(["a"], 1.0))
        large = QueryTaskMessage(COORDINATOR_ID, 0, sgkq(["a", "b", "c"], 1.0))
        assert large.estimated_bytes() > small.estimated_bytes()

    def test_task_message_counts_node_sources(self):
        msg = QueryTaskMessage(COORDINATOR_ID, 0, rkq(3, ["a"], 1.0))
        assert msg.estimated_bytes() > 24

    def test_result_message_size_scales_with_results(self):
        small = TaskResultMessage.from_nodes(1, 1, [1, 2], 0.1)
        large = TaskResultMessage.from_nodes(1, 1, range(50), 0.1)
        assert large.estimated_bytes() - small.estimated_bytes() == 48 * 8

    def test_result_message_wraps_nodes(self):
        msg = TaskResultMessage.from_nodes(2, 5, [9, 9, 3], 0.5)
        assert msg.result_nodes == frozenset({9, 3})
        assert msg.receiver == COORDINATOR_ID
        assert msg.fragment_id == 5


class TestNetworkModel:
    def test_transfer_time(self):
        model = NetworkModel(latency_seconds=0.001, bandwidth_bytes_per_second=1000.0)
        assert model.transfer_seconds(500) == pytest.approx(0.501)
        with pytest.raises(ValueError):
            model.transfer_seconds(-1)

    def test_default_models_100mb_switch(self):
        model = NetworkModel()
        assert model.bandwidth_bytes_per_second == pytest.approx(12_500_000.0)


class TestTrafficLedger:
    def test_coordinator_traffic_allowed(self):
        ledger = TrafficLedger()
        ledger.record(COORDINATOR_ID, 0, 100, "task")
        ledger.record(0, COORDINATOR_ID, 200, "result")
        assert ledger.total_bytes == 300
        assert ledger.bytes_by_kind() == {"task": 100, "result": 200}
        assert ledger.worker_to_worker_bytes() == 0

    def test_worker_to_worker_forbidden(self):
        ledger = TrafficLedger()
        with pytest.raises(CommunicationViolationError):
            ledger.record(0, 1, 10, "sneaky")


class TestCoordinatorAndCluster:
    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusterError):
            Coordinator(machines=[]).execute(sgkq(["a"], 1.0))

    def test_machine_without_fragments_rejected(self):
        machine = WorkerMachine(machine_id=0)
        with pytest.raises(ClusterError):
            machine.execute(sgkq(["a"], 1.0))

    def test_cluster_answers_match_oracle(self, cluster_case):
        net, fragments, indexes = cluster_case
        cluster = SimulatedCluster.from_fragments(fragments, indexes)
        oracle = CentralizedEvaluator(net)
        query = sgkq(["w0", "w1"], 4.0)
        response = cluster.execute(query)
        assert response.result_nodes == oracle.results(query)

    def test_response_accounting(self, cluster_case):
        _net, fragments, indexes = cluster_case
        cluster = SimulatedCluster.from_fragments(fragments, indexes)
        response = cluster.execute(sgkq(["w0"], 3.0))
        assert response.response_seconds >= max(response.machine_seconds.values())
        assert response.communication_seconds > 0
        assert response.total_message_bytes == cluster.ledger.total_bytes
        assert [r.fragment_id for r in response.task_results] == [0, 1, 2]

    def test_only_coordinator_traffic_ever_happens(self, cluster_case):
        """The Theorem-3 guarantee, enforced end to end."""
        _net, fragments, indexes = cluster_case
        cluster = SimulatedCluster.from_fragments(fragments, indexes)
        for radius in (1.0, 3.0):
            cluster.execute(sgkq(["w0", "w2"], radius))
        kinds = {t.kind for t in cluster.ledger.transfers}
        assert kinds == {"task", "result"}
        assert cluster.ledger.worker_to_worker_bytes() == 0
        for transfer in cluster.ledger.transfers:
            assert COORDINATOR_ID in (transfer.sender, transfer.receiver)

    def test_round_robin_machine_assignment(self, cluster_case):
        _net, fragments, indexes = cluster_case
        cluster = SimulatedCluster.from_fragments(fragments, indexes, num_machines=2)
        assert cluster.num_machines == 2
        hosted = [m.fragment_ids for m in cluster.coordinator.machines]
        assert hosted == [[0, 2], [1]]

    def test_machines_capped_at_fragments(self, cluster_case):
        _net, fragments, indexes = cluster_case
        cluster = SimulatedCluster.from_fragments(fragments, indexes, num_machines=10)
        assert cluster.num_machines == 3

    def test_mismatched_lengths_rejected(self, cluster_case):
        _net, fragments, indexes = cluster_case
        with pytest.raises(ClusterError):
            SimulatedCluster.from_fragments(fragments, indexes[:-1])


class TestProcessParallel:
    def test_parallel_build_matches_serial(self, cluster_case):
        net, fragments, serial_indexes = cluster_case
        parallel_indexes, stats = parallel_build_indexes(
            net, fragments, NPDBuildConfig(max_radius=math.inf), processes=2
        )
        assert len(stats) == len(fragments)
        for a, b in zip(serial_indexes, parallel_indexes):
            assert a.shortcuts == b.shortcuts
            assert a.keyword_entries == b.keyword_entries
            assert a.node_entries == b.node_entries

    def test_parallel_query_matches_oracle(self, cluster_case):
        net, fragments, indexes = cluster_case
        runtimes = [FragmentRuntime(f, i) for f, i in zip(fragments, indexes)]
        query = sgkq(["w0", "w1"], 4.0)
        answer, results = parallel_execute_query(runtimes, query, processes=2)
        assert answer == CentralizedEvaluator(net).results(query)
        assert len(results) == len(fragments)
