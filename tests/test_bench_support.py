"""Tests for the benchmark-support helpers (tables, timing)."""

from __future__ import annotations

import pytest

from repro.bench_support import Table, format_series, repeat_median, time_call
from repro.bench_support.reporting import print_experiment_header


class TestTable:
    def test_render_alignment(self):
        table = Table("Title", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("b", 12345)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert "12,345" in text

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = Table("t", ["x"])
        table.add_row(0.123456)
        table.add_row(12.3456)
        table.add_row(12345.6)
        table.add_row(0.0)
        text = table.render()
        assert "0.1235" in text
        assert "12.3" in text
        assert "12,346" in text
        assert "0" in text

    def test_show_prints(self, capsys):
        table = Table("Visible", ["c"])
        table.add_row("x")
        table.show()
        assert "Visible" in capsys.readouterr().out

    def test_format_series(self):
        line = format_series("latency", [1, 2], [0.5, 1.5])
        assert line.startswith("latency:")
        assert "1=" in line and "2=" in line

    def test_experiment_header(self, capsys):
        print_experiment_header("EXP X", "Fig. 0", "desc")
        out = capsys.readouterr().out
        assert "EXP X" in out and "Fig. 0" in out and "desc" in out


class TestTiming:
    def test_time_call_returns_result(self):
        result, seconds = time_call(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0

    def test_repeat_median(self):
        value = repeat_median(lambda: sum(range(100)), repeats=3)
        assert value >= 0

    def test_repeat_median_validation(self):
        with pytest.raises(ValueError):
            repeat_median(lambda: None, repeats=0)
