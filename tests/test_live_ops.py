"""Tests for typed update ops, the write-ahead log, and the stream generator."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import GraphError, LiveUpdateError
from repro.graph.road_network import RoadNetwork
from repro.live import (
    AddKeyword,
    RemoveKeyword,
    SetEdgeWeight,
    UpdateLog,
    op_from_record,
    write_ops,
)
from repro.workloads import UpdateGenConfig, UpdateStreamGenerator

from helpers import make_random_network


@pytest.fixture(scope="module")
def net() -> RoadNetwork:
    return make_random_network(seed=700, num_junctions=18, num_objects=10, vocabulary=4)


class TestOpRecords:
    def test_round_trip_every_kind(self):
        ops = [
            AddKeyword(node=3, keyword="cafe"),
            RemoveKeyword(node=7, keyword="fuel"),
            SetEdgeWeight(u=1, v=2, weight=3.25),
        ]
        for op in ops:
            record = op.to_record()
            # Records must be JSON-serialisable and lossless.
            assert op_from_record(json.loads(json.dumps(record))) == op

    def test_record_kinds_are_stable(self):
        assert AddKeyword(0, "x").to_record()["op"] == "add_keyword"
        assert RemoveKeyword(0, "x").to_record()["op"] == "remove_keyword"
        assert SetEdgeWeight(0, 1, 1.0).to_record()["op"] == "set_edge_weight"

    def test_unknown_kind_rejected(self):
        with pytest.raises(LiveUpdateError, match="unknown"):
            op_from_record({"op": "drop_table", "node": 0})

    def test_malformed_record_rejected(self):
        with pytest.raises(LiveUpdateError, match="malformed"):
            op_from_record({"op": "add_keyword", "node": 0})  # missing keyword
        with pytest.raises(LiveUpdateError, match="malformed"):
            op_from_record({"op": "set_edge_weight", "u": 0, "v": "not-a-node"})


class TestValidation:
    def test_add_to_junction_rejected(self, net):
        junction = next(n for n in net.nodes() if not net.is_object(n))
        with pytest.raises(LiveUpdateError, match="junction"):
            AddKeyword(node=junction, keyword="x").validate(net)

    def test_add_empty_keyword_rejected(self, net):
        node = next(iter(net.object_nodes()))
        with pytest.raises(LiveUpdateError, match="invalid keyword"):
            AddKeyword(node=node, keyword="").validate(net)

    def test_unknown_node_rejected(self, net):
        with pytest.raises(LiveUpdateError, match="does not exist"):
            AddKeyword(node=net.num_nodes + 5, keyword="x").validate(net)
        with pytest.raises(LiveUpdateError, match="does not exist"):
            RemoveKeyword(node=-1, keyword="x").validate(net)

    def test_missing_edge_rejected(self, net):
        # Find a non-adjacent pair.
        u = 0
        neighbors = {v for v, _w in net.neighbors(u)}
        v = next(n for n in net.nodes() if n != u and n not in neighbors)
        with pytest.raises(LiveUpdateError, match="no edge"):
            SetEdgeWeight(u=u, v=v, weight=1.0).validate(net)

    def test_bad_weights_rejected(self, net):
        u, (v, _w) = 0, next(iter(net.neighbors(0)))
        for weight in (0.0, -1.0, float("inf"), float("nan"), True, "2.0"):
            with pytest.raises(LiveUpdateError):
                SetEdgeWeight(u=u, v=v, weight=weight).validate(net)

    def test_valid_ops_pass(self, net):
        node = next(iter(net.object_nodes()))
        AddKeyword(node=node, keyword="fresh").validate(net)
        RemoveKeyword(node=node, keyword="whatever").validate(net)
        u, (v, w) = 0, next(iter(net.neighbors(0)))
        SetEdgeWeight(u=u, v=v, weight=w * 2).validate(net)


class TestUpdateLog:
    def test_append_commit_replay(self, tmp_path):
        log = UpdateLog(tmp_path / "wal.jsonl")
        batch1 = [AddKeyword(1, "a"), SetEdgeWeight(0, 1, 2.0)]
        batch2 = [RemoveKeyword(1, "a")]
        for op in batch1:
            log.append(op)
        log.commit(1, len(batch1))
        for op in batch2:
            log.append(op)
        log.commit(2, len(batch2))
        log.close()

        committed, pending = UpdateLog(tmp_path / "wal.jsonl").replay()
        assert pending == []
        assert [record.epoch for record in committed] == [1, 2]
        assert list(committed[0].ops) == batch1
        assert list(committed[1].ops) == batch2

    def test_sequence_numbers_survive_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        log = UpdateLog(path)
        assert log.append(AddKeyword(1, "a")) == 0
        assert log.append(AddKeyword(1, "b")) == 1
        log.commit(1, 2)
        log.close()
        reopened = UpdateLog(path)
        assert reopened.append(AddKeyword(1, "c")) == 2

    def test_pending_tail_surfaced(self, tmp_path):
        log = UpdateLog(tmp_path / "wal.jsonl")
        log.append(AddKeyword(1, "a"))
        log.commit(1, 1)
        log.append(AddKeyword(2, "b"))  # never committed
        log.close()
        committed, pending = log.replay()
        assert len(committed) == 1
        assert pending == [AddKeyword(2, "b")]

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_ops(path, [[AddKeyword(1, "a")]])
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 1, "op": "add_key')  # crash mid-append
        committed, pending = UpdateLog(path).replay()
        assert [record.epoch for record in committed] == [1]
        assert pending == []

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        lines = [
            '{"seq": 0, "op": "add_keyword", "node": 1, "keyword": "a"}',
            "garbage not json",
            '{"commit": 1, "ops": 1}',
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(LiveUpdateError, match="corrupt"):
            UpdateLog(path).replay()

    def test_overreaching_commit_marker_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(
            '{"seq": 0, "op": "add_keyword", "node": 1, "keyword": "a"}\n'
            '{"commit": 1, "ops": 5}\n',
            encoding="utf-8",
        )
        with pytest.raises(LiveUpdateError, match="commit marker"):
            UpdateLog(path).replay()

    def test_committed_ops_flattened_in_order(self, tmp_path):
        path = write_ops(
            tmp_path / "wal.jsonl",
            [[AddKeyword(1, "a"), AddKeyword(2, "b")], [RemoveKeyword(1, "a")]],
        )
        assert UpdateLog(path).committed_ops() == [
            AddKeyword(1, "a"),
            AddKeyword(2, "b"),
            RemoveKeyword(1, "a"),
        ]

    def test_missing_file_replays_empty(self, tmp_path):
        assert UpdateLog(tmp_path / "never-written.jsonl").replay() == ([], [])


class TestUpdateStreamGenerator:
    def test_deterministic_per_seed(self, net):
        a = UpdateStreamGenerator(net, UpdateGenConfig(seed=9)).ops(30)
        b = UpdateStreamGenerator(net, UpdateGenConfig(seed=9)).ops(30)
        assert [op.to_record() for op in a] == [op.to_record() for op in b]
        c = UpdateStreamGenerator(net, UpdateGenConfig(seed=10)).ops(30)
        assert [op.to_record() for op in a] != [op.to_record() for op in c]

    def test_stream_is_valid_in_sequence(self, net):
        """Every op validates against the network state at its position."""
        stream = UpdateStreamGenerator(net, UpdateGenConfig(seed=4)).ops(60)
        current = net
        for op in stream:
            op.validate(current)
            if isinstance(op, AddKeyword):
                assert op.keyword not in current.keywords(op.node)
                current = current.with_node_keywords(
                    op.node, current.keywords(op.node) | {op.keyword}
                )
            elif isinstance(op, RemoveKeyword):
                assert op.keyword in current.keywords(op.node)
                current = current.with_node_keywords(
                    op.node, current.keywords(op.node) - {op.keyword}
                )
            else:
                assert isinstance(op, SetEdgeWeight)
                current = current.with_edge_weight(op.u, op.v, op.weight)

    def test_mix_covers_all_kinds(self, net):
        stream = UpdateStreamGenerator(net, UpdateGenConfig(seed=2)).ops(60)
        kinds = {op.kind for op in stream}
        assert kinds == {"add_keyword", "remove_keyword", "set_edge_weight"}

    def test_single_kind_mix(self, net):
        config = UpdateGenConfig(seed=3, add_fraction=1.0, remove_fraction=0.0, edge_fraction=0.0)
        stream = UpdateStreamGenerator(net, config).ops(20)
        assert all(op.kind == "add_keyword" for op in stream)

    def test_batches_shape(self, net):
        batches = UpdateStreamGenerator(net, UpdateGenConfig(seed=5)).batches(4, 7)
        assert len(batches) == 4
        assert all(len(batch) == 7 for batch in batches)

    def test_bad_config_rejected(self, net):
        with pytest.raises(GraphError, match="mix weights"):
            UpdateStreamGenerator(
                net,
                UpdateGenConfig(add_fraction=0.0, remove_fraction=0.0, edge_fraction=0.0),
            )
        with pytest.raises(GraphError, match="weight_scale_range"):
            UpdateStreamGenerator(net, UpdateGenConfig(weight_scale_range=(0.0, 2.0)))
