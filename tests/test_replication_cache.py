"""Tests for fragment replication/failure handling and the coverage cache."""

from __future__ import annotations

import math

import pytest

from repro import DisksEngine, EngineConfig, sgkq
from repro.baselines import CentralizedEvaluator
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.core.coverage import FragmentRuntime, local_coverage
from repro.core.queries import CoverageTerm, KeywordSource
from repro.dist import ReplicatedCluster
from repro.exceptions import ClusterError
from repro.partition import BfsPartitioner

from helpers import make_random_network


@pytest.fixture(scope="module")
def replicated_case():
    net = make_random_network(seed=800, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=8).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, fragments, indexes


class TestReplicatedCluster:
    def test_placement_validation(self, replicated_case):
        _net, fragments, indexes = replicated_case
        with pytest.raises(ClusterError):
            ReplicatedCluster.from_fragments(
                fragments, indexes, num_machines=2, replication_factor=3
            )
        with pytest.raises(ClusterError):
            ReplicatedCluster.from_fragments(
                fragments, indexes[:-1], num_machines=2
            )

    def test_every_fragment_has_r_replicas(self, replicated_case):
        _net, fragments, indexes = replicated_case
        cluster = ReplicatedCluster.from_fragments(
            fragments, indexes, num_machines=4, replication_factor=2
        )
        for fragment in fragments:
            assert len(cluster.replicas_of(fragment.fragment_id)) == 2

    def test_healthy_answers_match_oracle(self, replicated_case):
        net, fragments, indexes = replicated_case
        cluster = ReplicatedCluster.from_fragments(
            fragments, indexes, num_machines=4, replication_factor=2
        )
        query = sgkq(["w0", "w1"], 4.0)
        response = cluster.execute(query)
        assert response.result_nodes == CentralizedEvaluator(net).results(query)
        assert set(response.chosen_machines) == {0, 1, 2, 3}

    def test_survives_single_failure(self, replicated_case):
        net, fragments, indexes = replicated_case
        cluster = ReplicatedCluster.from_fragments(
            fragments, indexes, num_machines=4, replication_factor=2
        )
        query = sgkq(["w0", "w2"], 3.0)
        expected = CentralizedEvaluator(net).results(query)
        for victim in range(4):
            cluster.fail_machine(victim)
            response = cluster.execute(query)
            assert response.result_nodes == expected
            assert victim not in response.chosen_machines.values()
            cluster.restore_machine(victim)

    def test_too_many_failures_raises(self, replicated_case):
        _net, fragments, indexes = replicated_case
        cluster = ReplicatedCluster.from_fragments(
            fragments, indexes, num_machines=4, replication_factor=2
        )
        cluster.fail_machine(0)
        cluster.fail_machine(1)
        with pytest.raises(ClusterError):
            cluster.execute(sgkq(["w0"], 1.0))

    def test_all_failed_raises(self, replicated_case):
        _net, fragments, indexes = replicated_case
        cluster = ReplicatedCluster.from_fragments(
            fragments, indexes, num_machines=2, replication_factor=2
        )
        cluster.fail_machine(0)
        cluster.fail_machine(1)
        with pytest.raises(ClusterError):
            cluster.execute(sgkq(["w0"], 1.0))

    def test_unknown_machine_rejected(self, replicated_case):
        _net, fragments, indexes = replicated_case
        cluster = ReplicatedCluster.from_fragments(
            fragments, indexes, num_machines=2, replication_factor=1
        )
        with pytest.raises(ClusterError):
            cluster.fail_machine(9)
        with pytest.raises(ClusterError):
            cluster.restore_machine(9)

    def test_traffic_stays_coordinator_only(self, replicated_case):
        _net, fragments, indexes = replicated_case
        cluster = ReplicatedCluster.from_fragments(
            fragments, indexes, num_machines=4, replication_factor=2
        )
        cluster.fail_machine(2)
        cluster.execute(sgkq(["w0"], 2.0))
        assert cluster.ledger.worker_to_worker_bytes() == 0

    def test_placement_balances_load(self, replicated_case):
        _net, fragments, indexes = replicated_case
        cluster = ReplicatedCluster.from_fragments(
            fragments, indexes, num_machines=2, replication_factor=2
        )
        response = cluster.execute(sgkq(["w0"], 2.0))
        counts: dict[int, int] = {}
        for machine in response.chosen_machines.values():
            counts[machine] = counts.get(machine, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 1


class TestCoverageCache:
    def _runtime(self, capacity: int):
        net = make_random_network(seed=810, num_junctions=20, num_objects=10, vocabulary=4)
        partition = BfsPartitioner(seed=1).partition(net, 2)
        fragments = build_fragments(net, partition)
        indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
        return net, FragmentRuntime(fragments[0], indexes[0], cache_capacity=capacity)

    def test_disabled_by_default(self):
        net, runtime = self._runtime(0)
        term = CoverageTerm(KeywordSource("w0"), 3.0)
        local_coverage(runtime, term)
        local_coverage(runtime, term)
        assert runtime.cache_stats == (0, 0, 0)

    def test_hit_returns_same_result(self):
        net, runtime = self._runtime(8)
        term = CoverageTerm(KeywordSource("w0"), 3.0)
        first = local_coverage(runtime, term)
        second = local_coverage(runtime, term)
        assert first == second
        hits, misses, _skipped = runtime.cache_stats
        assert hits == 1 and misses == 1

    def test_distinct_radiuses_are_distinct_entries(self):
        _net, runtime = self._runtime(8)
        a = local_coverage(runtime, CoverageTerm(KeywordSource("w0"), 2.0))
        b = local_coverage(runtime, CoverageTerm(KeywordSource("w0"), 4.0))
        assert a <= b
        hits, _misses, _skipped = runtime.cache_stats
        assert hits == 0

    def test_lru_eviction(self):
        _net, runtime = self._runtime(2)
        t1 = CoverageTerm(KeywordSource("w0"), 1.0)
        t2 = CoverageTerm(KeywordSource("w1"), 1.0)
        t3 = CoverageTerm(KeywordSource("w2"), 1.0)
        local_coverage(runtime, t1)
        local_coverage(runtime, t2)
        local_coverage(runtime, t3)  # evicts t1
        local_coverage(runtime, t1)  # miss again
        hits, misses, _skipped = runtime.cache_stats
        assert hits == 0 and misses == 4

    def test_invalidate(self):
        _net, runtime = self._runtime(4)
        term = CoverageTerm(KeywordSource("w0"), 2.0)
        local_coverage(runtime, term)
        runtime.invalidate_cache()
        local_coverage(runtime, term)
        hits, misses, _skipped = runtime.cache_stats
        assert hits == 0 and misses == 2

    def test_max_entry_nodes_guard_skips_large_maps(self):
        net = make_random_network(seed=810, num_junctions=20, num_objects=10, vocabulary=4)
        partition = BfsPartitioner(seed=1).partition(net, 2)
        fragments = build_fragments(net, partition)
        indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
        runtime = FragmentRuntime(
            fragments[0], indexes[0], cache_capacity=8, cache_max_entry_nodes=0
        )
        term = CoverageTerm(KeywordSource("w0"), 3.0)
        first = local_coverage(runtime, term)
        assert first  # a non-empty map, i.e. larger than the guard
        second = local_coverage(runtime, term)  # recomputed, not cached
        assert second == first
        hits, misses, skipped = runtime.cache_stats
        assert hits == 0 and misses == 2 and skipped == 2

    def test_guard_leaves_small_maps_cacheable(self):
        net = make_random_network(seed=810, num_junctions=20, num_objects=10, vocabulary=4)
        partition = BfsPartitioner(seed=1).partition(net, 2)
        fragments = build_fragments(net, partition)
        indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
        runtime = FragmentRuntime(
            fragments[0], indexes[0], cache_capacity=8, cache_max_entry_nodes=10_000
        )
        term = CoverageTerm(KeywordSource("w0"), 3.0)
        local_coverage(runtime, term)
        local_coverage(runtime, term)
        hits, misses, skipped = runtime.cache_stats
        assert hits == 1 and misses == 1 and skipped == 0

    def test_cluster_aggregates_cache_stats(self):
        net = make_random_network(seed=812, num_junctions=24, num_objects=12, vocabulary=4)
        from repro.dist.cluster import SimulatedCluster

        partition = BfsPartitioner(seed=3).partition(net, 3)
        fragments = build_fragments(net, partition)
        indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
        cluster = SimulatedCluster.from_fragments(
            fragments, indexes, cache_capacity=8, cache_max_entry_nodes=0
        )
        query = sgkq(["w0"], 3.0)
        cluster.execute(query)
        cluster.execute(query)
        totals = cluster.coverage_cache_stats()
        # Every term evaluation consults the cache once; maps above the
        # guard (here: any non-empty map) are recomputed, not cached.
        assert totals["hits"] + totals["misses"] == 2 * len(fragments)
        assert totals["skipped"] >= 1  # at least one fragment produced a map

    def test_engine_with_cache_matches_oracle(self):
        net = make_random_network(seed=811, num_junctions=25, num_objects=12, vocabulary=4)
        cached_engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=3,
                lambda_factor=None,
                max_radius=math.inf,
                coverage_cache_capacity=32,
                partitioner=BfsPartitioner(seed=2),
            ),
        )
        oracle = CentralizedEvaluator(net)
        query = sgkq(["w0", "w1"], 4.0)
        for _ in range(3):  # repeated queries hit the cache
            assert cached_engine.results(query) == oracle.results(query)
