"""Round-trip and error tests for :mod:`repro.graph.io`."""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.graph import (
    load_network_json,
    network_from_dict,
    network_to_dict,
    read_edge_list,
    save_network_json,
    write_edge_list,
)
from repro.workloads import toy_figure1

from helpers import make_random_network


def assert_networks_equal(a, b):
    assert a.num_nodes == b.num_nodes
    assert a.directed == b.directed
    assert list(a.edges()) == list(b.edges())
    for node in a.nodes():
        assert a.kind(node) == b.kind(node)
        assert a.keywords(node) == b.keywords(node)
        if a.has_positions:
            assert a.position(node) == b.position(node)


class TestEdgeListFormat:
    def test_round_trip_figure1(self):
        net = toy_figure1()
        buffer = io.StringIO()
        write_edge_list(net, buffer)
        buffer.seek(0)
        assert_networks_equal(net, read_edge_list(buffer))

    def test_round_trip_without_positions(self):
        from repro.graph import RoadNetworkBuilder

        b = RoadNetworkBuilder()
        b.add_object({"kw with spaces", 'quote"kw'})
        b.add_junction()
        b.add_edge(0, 1, 1.25)
        net = b.build()
        buffer = io.StringIO()
        write_edge_list(net, buffer)
        buffer.seek(0)
        assert_networks_equal(net, read_edge_list(buffer))

    def test_bad_header(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("garbage\n"))

    def test_wrong_version(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("H 99 0 0 0\n"))

    def test_node_count_mismatch(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("H 1 0 2 0\nN 0 0\n"))

    def test_unknown_tag(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("H 1 0 0 0\nZ nonsense\n"))

    def test_comments_and_blanks_ignored(self):
        text = "H 1 0 2 0\nN 0 0\n\n# comment\nN 1 0\nE 0 1 1.0\n"
        net = read_edge_list(io.StringIO(text))
        assert net.num_nodes == 2
        assert net.num_edges == 1

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_round_trip_random(self, seed):
        net = make_random_network(seed=seed, num_junctions=12, num_objects=6)
        buffer = io.StringIO()
        write_edge_list(net, buffer)
        buffer.seek(0)
        assert_networks_equal(net, read_edge_list(buffer))


class TestJsonFormat:
    def test_dict_round_trip(self):
        net = make_random_network(seed=3)
        assert_networks_equal(net, network_from_dict(network_to_dict(net)))

    def test_dict_round_trip_directed(self):
        net = make_random_network(seed=4, directed=True)
        clone = network_from_dict(network_to_dict(net))
        assert clone.directed
        assert_networks_equal(net, clone)

    def test_json_serialisable(self):
        payload = network_to_dict(toy_figure1())
        assert network_from_dict(json.loads(json.dumps(payload)))

    def test_file_round_trip(self, tmp_path):
        net = toy_figure1()
        path = tmp_path / "net.json"
        save_network_json(net, path)
        assert_networks_equal(net, load_network_json(path))

    def test_unsupported_version(self):
        with pytest.raises(GraphError):
            network_from_dict({"version": 42})
