"""Tests for the extension features: strict Rules 3/4, top-k, batches, CLI."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import DisksEngine, EngineConfig, sgkq
from repro.baselines import CentralizedEvaluator
from repro.core import (
    KeywordSource,
    NodeSource,
    NPDBuildConfig,
    TopKQuery,
    build_all_indexes,
    build_fragments,
)
from repro.core.topk import merge_topk
from repro.exceptions import QueryError, RadiusExceededError, UnknownKeywordError
from repro.graph import RoadNetworkBuilder
from repro.partition import BfsPartitioner
from repro.search import shortest_path_distances

from helpers import make_random_network, oracle_distances


def tied_network():
    """A graph with deliberate shortest-path ties (integer weights)."""
    b = RoadNetworkBuilder()
    nodes = [b.add_object({f"w{i}"}) if i % 2 == 0 else b.add_junction() for i in range(8)]
    edges = [
        (0, 1, 1.0), (1, 2, 1.0), (0, 3, 1.0), (3, 2, 1.0),  # two 0->2 paths of length 2
        (2, 4, 1.0), (4, 5, 1.0), (2, 6, 1.0), (6, 5, 1.0),  # two 2->5 paths of length 2
        (5, 7, 1.0),
    ]
    for u, v, w in edges:
        b.add_edge(u, v, w)
    return b.build()


class TestStrictTieRules:
    def _indexes(self, net, partition, strict: bool):
        fragments = build_fragments(net, partition)
        config = NPDBuildConfig(max_radius=math.inf, strict_tie_rules=strict)
        indexes, _ = build_all_indexes(net, fragments, config)
        return fragments, indexes

    def test_strict_is_subset_of_relaxed(self):
        net = tied_network()
        partition = BfsPartitioner(seed=1).partition(net, 3)
        _f1, relaxed = self._indexes(net, partition, strict=False)
        _f2, strict = self._indexes(net, partition, strict=True)
        for rel, str_ in zip(relaxed, strict):
            assert set(str_.shortcuts) <= set(rel.shortcuts)
            for kw, pairs in str_.keyword_entries.items():
                strict_pairs = {(pd.portal, pd.distance) for pd in pairs}
                relaxed_pairs = {
                    (pd.portal, pd.distance) for pd in rel.keyword_entries.get(kw, ())
                }
                assert strict_pairs <= relaxed_pairs

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 800), k=st.integers(2, 4))
    def test_strict_mode_remains_exact(self, seed, k):
        """Rule 3/4 strictness must not break Theorem 1/3 exactness."""
        net = make_random_network(seed=seed, num_junctions=16, num_objects=8, vocabulary=4)
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=k,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=BfsPartitioner(seed=seed),
            ),
        )
        # Rebuild the same fragments strictly and compare answers.
        from repro.core.coverage import FragmentRuntime
        from repro.core.executor import execute_fragment_task

        fragments, strict_indexes = self._indexes(net, engine.partition, strict=True)
        oracle = CentralizedEvaluator(net)
        keywords = sorted(net.all_keywords())[:2]
        for radius in (1.5, 4.0):
            query = sgkq(keywords, radius)
            merged: set[int] = set()
            for fragment, index in zip(fragments, strict_indexes):
                runtime = FragmentRuntime(fragment, index)
                merged |= execute_fragment_task(runtime, query).local_result
            assert merged == oracle.results(query)

    def test_strict_mode_exact_on_tied_graph(self):
        net = tied_network()
        partition = BfsPartitioner(seed=2).partition(net, 3)
        fragments, indexes = self._indexes(net, partition, strict=True)
        from repro.core.coverage import FragmentRuntime

        oracle = oracle_distances(net, [0])
        for fragment, index in zip(fragments, indexes):
            runtime = FragmentRuntime(fragment, index)
            if 0 in fragment.members:
                local = shortest_path_distances(runtime.adjacency, [0])
                for member in fragment.members:
                    assert local.get(member, math.inf) == pytest.approx(
                        oracle.get(member, math.inf)
                    )


@pytest.fixture(scope="module")
def topk_engine():
    net = make_random_network(seed=900, num_junctions=30, num_objects=15, vocabulary=5)
    return net, DisksEngine.build(
        net,
        EngineConfig(
            num_fragments=4,
            lambda_factor=None,
            max_radius=math.inf,
            partitioner=BfsPartitioner(seed=9),
        ),
    )


class TestTopK:
    def test_validation(self):
        with pytest.raises(QueryError):
            TopKQuery(KeywordSource("a"), 0, 1.0)
        with pytest.raises(QueryError):
            TopKQuery(KeywordSource("a"), 1, -1.0)

    def test_keyword_topk_matches_brute_force(self, topk_engine):
        net, engine = topk_engine
        seeds = [n for n in net.nodes() if "w0" in net.keywords(n)]
        oracle = oracle_distances(net, seeds)
        expected = sorted(oracle.items(), key=lambda kv: (kv[1], kv[0]))[:5]
        result = engine.top_k(TopKQuery(KeywordSource("w0"), 5, 50.0))
        assert result.saturated
        assert [n for n, _ in result.ranking] == [n for n, _ in expected]
        for (node, dist), (_enode, edist) in zip(result.ranking, expected):
            assert dist == pytest.approx(edist)

    def test_node_topk_is_knn(self, topk_engine):
        net, engine = topk_engine
        location = next(iter(net.object_nodes()))
        oracle = oracle_distances(net, [location])
        expected = sorted(oracle.items(), key=lambda kv: (kv[1], kv[0]))[:4]
        result = engine.top_k(TopKQuery(NodeSource(location), 4, 50.0))
        assert [n for n, _ in result.ranking] == [n for n, _ in expected]

    def test_radius_limits_candidates(self, topk_engine):
        net, engine = topk_engine
        result = engine.top_k(TopKQuery(KeywordSource("w0"), 10_000, 2.0))
        assert not result.saturated
        assert all(dist <= 2.0 for _n, dist in result.ranking)

    def test_unknown_keyword(self, topk_engine):
        _net, engine = topk_engine
        with pytest.raises(UnknownKeywordError):
            engine.top_k(TopKQuery(KeywordSource("missing"), 3, 1.0))

    def test_radius_beyond_maxr(self):
        net = make_random_network(seed=901, num_junctions=15, num_objects=8)
        engine = DisksEngine.build(
            net, EngineConfig(num_fragments=2, lambda_factor=2.0)
        )
        with pytest.raises(RadiusExceededError):
            engine.top_k(TopKQuery(KeywordSource("w0"), 3, engine.max_radius * 2))

    def test_merge_handles_duplicate_free_fragments(self):
        from repro.core.topk import TopKTaskResult

        query = TopKQuery(KeywordSource("w"), 3, 10.0)
        results = [
            TopKTaskResult(0, ((1, 1.0), (2, 3.0)), 0.0),
            TopKTaskResult(1, ((3, 2.0),), 0.0),
        ]
        merged = merge_topk(query, results)
        assert merged.ranking == ((1, 1.0), (3, 2.0), (2, 3.0))
        assert merged.saturated


class TestBatchReport:
    def test_throughput_accounting(self, topk_engine):
        net, engine = topk_engine
        batch = [sgkq(["w0"], 2.0), sgkq(["w1", "w2"], 3.0)]
        report = engine.execute_many(batch)
        assert len(report.reports) == 2
        assert report.total_response_seconds == pytest.approx(
            sum(r.response_seconds for r in report.reports)
        )
        assert report.queries_per_second > 0
        assert report.total_message_bytes == sum(
            r.total_message_bytes for r in report.reports
        )

    def test_empty_batch_rejected(self, topk_engine):
        _net, engine = topk_engine
        from repro.exceptions import DisksError

        with pytest.raises(DisksError):
            engine.execute_many([])


class TestCLI:
    def test_demo(self, capsys):
        from repro.cli import main

        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "B, E" in out
        assert "D" in out

    def test_info(self, capsys):
        from repro.cli import main

        assert main(["info", "--dataset", "aus_tiny"]) == 0
        assert "aus_tiny" in capsys.readouterr().out

    def test_build_then_query(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "deploy"
        assert main([
            "build", "--dataset", "aus_tiny", "--fragments", "3",
            "--lambda-factor", "10", "--out", str(out_dir),
        ]) == 0
        assert (out_dir / "manifest.json").exists()
        assert (out_dir / "fragment-2.npf").exists()
        assert main([
            "query", "--dir", str(out_dir), "--keywords", "kw0000", "--radius", "4",
        ]) == 0
        assert "results" in capsys.readouterr().out

    def test_query_radius_over_maxr(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "deploy"
        main(["build", "--dataset", "aus_tiny", "--fragments", "2",
              "--lambda-factor", "5", "--out", str(out_dir)])
        code = main(["query", "--dir", str(out_dir),
                     "--keywords", "kw0000", "--radius", "9999"])
        assert code == 2

    def test_query_missing_manifest(self, tmp_path):
        from repro.cli import main

        assert main(["query", "--dir", str(tmp_path),
                     "--keywords", "a", "--radius", "1"]) == 1

    def test_cli_query_matches_engine(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads import load_dataset

        out_dir = tmp_path / "deploy"
        main(["build", "--dataset", "aus_tiny", "--fragments", "4",
              "--lambda-factor", "10", "--out", str(out_dir)])
        assert main(["query", "--dir", str(out_dir),
                     "--keywords", "kw0000,kw0001", "--radius", "5"]) == 0
        out = capsys.readouterr().out
        result_line = next(line for line in out.splitlines() if " results (" in line)
        count = int(result_line.split(":")[-1].strip().split()[0])
        dataset = load_dataset("aus_tiny")
        expected = CentralizedEvaluator(dataset.network).results(
            sgkq(["kw0000", "kw0001"], 5.0)
        )
        assert count == len(expected)
