"""Tests for the pipelined (request-id multiplexed) worker cluster."""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro import sgkq
from repro.baselines import CentralizedEvaluator
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments, parse_query
from repro.dist import SimulatedCluster
from repro.exceptions import ClusterError
from repro.partition import BfsPartitioner
from repro.serve import PipelinedCluster

from helpers import make_random_network


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=650, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=6).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, fragments, indexes


@pytest.fixture()
def cluster(built):
    _net, fragments, indexes = built
    with PipelinedCluster.start(fragments, indexes, num_machines=4) as cluster:
        yield cluster


class TestLifecycle:
    def test_start_and_shutdown(self, built):
        _net, fragments, indexes = built
        cluster = PipelinedCluster.start(fragments, indexes)
        assert cluster.num_machines == 4
        assert not cluster.degraded
        cluster.shutdown()
        with pytest.raises(ClusterError):
            cluster.submit(sgkq(["w0"], 1.0))

    def test_double_shutdown_is_safe(self, built):
        _net, fragments, indexes = built
        cluster = PipelinedCluster.start(fragments, indexes, num_machines=2)
        cluster.shutdown()
        cluster.shutdown()

    def test_validation(self, built):
        _net, fragments, indexes = built
        with pytest.raises(ClusterError):
            PipelinedCluster.start(fragments, indexes[:-1])
        with pytest.raises(ClusterError):
            PipelinedCluster.start([], [])

    def test_shutdown_fails_inflight_futures(self, built):
        _net, fragments, indexes = built
        cluster = PipelinedCluster.start(fragments, indexes, num_machines=2)
        pendings = [cluster.submit(sgkq(["w0"], 3.0)) for _ in range(4)]
        cluster.shutdown()
        for pending in pendings:
            # Either it finished before the stop or it was failed — never hangs.
            try:
                pending.future.result(timeout=5)
            except ClusterError:
                pass


class TestExecution:
    def test_execute_matches_oracle(self, built, cluster):
        net, _fragments, _indexes = built
        oracle = CentralizedEvaluator(net)
        for radius in (1.0, 3.0, 6.0):
            query = sgkq(["w0", "w1"], radius)
            response = cluster.execute(query)
            assert response.result_nodes == oracle.results(query)
            assert set(response.fragment_seconds) == {0, 1, 2, 3}
            assert len(response.machine_seconds) == 4
            assert response.message_bytes > 0
            assert not response.degraded

    def test_many_queries_in_flight_match_simulated_cluster(self, built, cluster):
        """≥ 4 queries in flight at once, answers equal the simulation's."""
        net, fragments, indexes = built
        reference = SimulatedCluster.from_fragments(fragments, indexes)
        queries = [
            parse_query("NEAR(w0, 2) AND NEAR(w1, 2)"),
            parse_query("HAS(w2) OR NEAR(w3, 1)"),
            parse_query("NEAR(w0, 5) NOT NEAR(w2, 1)"),
            parse_query("WITHIN(4 OF #0) AND HAS(w0)"),
            sgkq(["w1"], 4.0),
            sgkq(["w0", "w1", "w2"], 6.0),
        ]
        pendings = [cluster.submit(query) for query in queries]  # all in flight
        for query, pending in zip(queries, pendings):
            response = pending.future.result(timeout=30)
            assert response.result_nodes == reference.execute(query).result_nodes

    def test_interleaved_submitters(self, built, cluster):
        """Concurrent submitting threads each get their own answers back."""
        net, _fragments, _indexes = built
        oracle = CentralizedEvaluator(net)
        failures: list[str] = []

        def _submitter(radius: float) -> None:
            query = sgkq(["w0"], radius)
            expected = oracle.results(query)
            for _ in range(5):
                response = cluster.execute(query, timeout_seconds=30)
                if response.result_nodes != expected:
                    failures.append(f"radius {radius}: wrong answer")

        threads = [
            threading.Thread(target=_submitter, args=(radius,))
            for radius in (1.0, 2.0, 3.0, 4.0)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures

    def test_forget_drops_late_replies(self, built, cluster):
        pending = cluster.submit(sgkq(["w0"], 3.0))
        cluster.forget(pending.request_id)
        # The reply arrives after the forget and is silently dropped; the
        # next query is unaffected.
        response = cluster.execute(sgkq(["w1"], 2.0))
        assert len(response.machine_seconds) == 4


class TestWorkerCrash:
    def test_death_fails_only_inflight_and_degrades(self, built):
        net, fragments, indexes = built
        oracle = CentralizedEvaluator(net)
        cluster = PipelinedCluster.start(fragments, indexes, num_machines=4)
        try:
            query = sgkq(["w0", "w1"], 5.0)
            pendings = [cluster.submit(query) for _ in range(6)]
            cluster._processes[2].kill()
            # No future may hang: each either completed before the kill
            # or fails with ClusterError within the timeout.
            for pending in pendings:
                try:
                    pending.future.result(timeout=15)
                except ClusterError:
                    pass

            # The dispatcher notices the EOF promptly and flips degraded.
            deadline = threading.Event()
            for _ in range(100):
                if cluster.degraded:
                    break
                deadline.wait(0.05)
            assert cluster.degraded
            assert cluster.dead_machines == frozenset({2})

            # Subsequent queries run on the survivors, marked degraded,
            # and answer with a subset of the full result.
            response = cluster.execute(query, timeout_seconds=15)
            assert response.degraded
            assert 2 not in response.machine_seconds
            assert response.result_nodes <= oracle.results(query)
        finally:
            cluster.shutdown()

    def test_all_workers_dead_raises(self, built):
        _net, fragments, indexes = built
        cluster = PipelinedCluster.start(fragments, indexes, num_machines=2)
        try:
            for process in cluster._processes:
                process.kill()
            for _ in range(100):
                if len(cluster.dead_machines) == 2:
                    break
                threading.Event().wait(0.05)
            with pytest.raises(ClusterError):
                cluster.submit(sgkq(["w0"], 1.0))
        finally:
            cluster.shutdown()


class TestNetworkEmulation:
    def test_pipelining_overlaps_the_emulated_link(self, built):
        """Queued queries hide the modelled latency instead of paying it
        once per query — the reason this cluster exists."""
        from repro.dist import NetworkModel

        _net, fragments, indexes = built
        model = NetworkModel(latency_seconds=0.02)
        with PipelinedCluster.start(
            fragments, indexes, num_machines=2, network_model=model
        ) as cluster:
            single = cluster.execute(sgkq(["w0"], 2.0))
            assert single.wall_seconds >= 2 * model.latency_seconds

            count = 10
            started = time.perf_counter()
            pendings = [cluster.submit(sgkq(["w0"], 2.0)) for _ in range(count)]
            for pending in pendings:
                pending.future.result(timeout=30)
            burst_wall = time.perf_counter() - started
            # Far below count * rtt: the transfers overlapped.
            assert burst_wall < count * 2 * model.latency_seconds
