"""Tests for :mod:`repro.graph.stats`."""

from __future__ import annotations

import pytest

from repro.graph import RoadNetworkBuilder, compute_stats
from repro.workloads import toy_figure1


class TestComputeStats:
    def test_figure1_stats(self):
        stats = compute_stats(toy_figure1())
        assert stats.num_nodes == 5
        assert stats.num_objects == 4
        assert stats.num_edges == 5
        assert stats.num_keywords == 4
        assert stats.connected
        assert stats.avg_keywords_per_object == 1.0
        assert stats.min_edge_weight == 1.0
        assert stats.max_edge_weight == 4.0

    def test_degree_stats(self):
        stats = compute_stats(toy_figure1())
        assert stats.max_degree == 3  # node E touches A, B, D
        assert stats.avg_degree == pytest.approx(2 * 5 / 5)

    def test_empty_network(self):
        stats = compute_stats(RoadNetworkBuilder().build())
        assert stats.num_nodes == 0
        assert stats.avg_degree == 0.0
        assert stats.avg_edge_weight == 0.0
        assert stats.connected

    def test_table_row_contains_counts(self):
        row = compute_stats(toy_figure1()).as_table_row("FIG1")
        assert "FIG1" in row
        assert "5" in row
        assert "4" in row
