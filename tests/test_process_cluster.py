"""Tests for the real process-based cluster."""

from __future__ import annotations

import math

import pytest

from repro import sgkq
from repro.baselines import CentralizedEvaluator
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.dist import ProcessCluster
from repro.exceptions import ClusterError
from repro.partition import BfsPartitioner

from helpers import make_random_network


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=650, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=6).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, fragments, indexes


class TestLifecycle:
    def test_start_and_shutdown(self, built):
        _net, fragments, indexes = built
        cluster = ProcessCluster.start(fragments, indexes)
        assert cluster.num_machines == 4
        cluster.shutdown()
        with pytest.raises(ClusterError):
            cluster.execute(sgkq(["w0"], 1.0))

    def test_context_manager(self, built):
        net, fragments, indexes = built
        with ProcessCluster.start(fragments, indexes, num_machines=2) as cluster:
            assert cluster.num_machines == 2
            response = cluster.execute(sgkq(["w0"], 3.0))
            assert response.result_nodes == CentralizedEvaluator(net).results(
                sgkq(["w0"], 3.0)
            )

    def test_validation(self, built):
        _net, fragments, indexes = built
        with pytest.raises(ClusterError):
            ProcessCluster.start(fragments, indexes[:-1])
        with pytest.raises(ClusterError):
            ProcessCluster.start([], [])

    def test_double_shutdown_is_safe(self, built):
        _net, fragments, indexes = built
        cluster = ProcessCluster.start(fragments, indexes, num_machines=2)
        cluster.shutdown()
        cluster.shutdown()


class TestExecution:
    def test_matches_oracle_over_batch(self, built):
        net, fragments, indexes = built
        oracle = CentralizedEvaluator(net)
        with ProcessCluster.start(fragments, indexes) as cluster:
            for radius in (1.0, 3.0, 6.0):
                query = sgkq(["w0", "w1"], radius)
                response = cluster.execute(query)
                assert response.result_nodes == oracle.results(query)
                assert set(response.fragment_seconds) == {0, 1, 2, 3}
                assert response.message_bytes > 0
                assert response.wall_seconds > 0

    def test_fewer_machines_than_fragments(self, built):
        net, fragments, indexes = built
        oracle = CentralizedEvaluator(net)
        query = sgkq(["w1", "w2"], 4.0)
        with ProcessCluster.start(fragments, indexes, num_machines=2) as cluster:
            response = cluster.execute(query)
            assert response.result_nodes == oracle.results(query)
            assert len(response.machine_seconds) == 2
            assert len(response.fragment_seconds) == 4


class TestWorkerCrash:
    def test_dead_worker_surfaces_cluster_error_not_a_hang(self, built):
        """Killing a worker mid-stream fails the query within the timeout."""
        _net, fragments, indexes = built
        cluster = ProcessCluster.start(fragments, indexes, num_machines=4)
        try:
            cluster.execute(sgkq(["w0"], 2.0))  # healthy first
            cluster._processes[1].kill()
            cluster._processes[1].join(timeout=10)
            with pytest.raises(ClusterError, match="died|gone|did not answer"):
                cluster.execute(sgkq(["w0"], 2.0), timeout_seconds=10)
        finally:
            cluster.shutdown()


class TestNetworkEmulation:
    def test_emulated_link_charges_the_round_trip(self, built):
        """With a network model, each query pays ≥ one modelled RTT."""
        from repro.dist import NetworkModel

        net, fragments, indexes = built
        model = NetworkModel(latency_seconds=0.02)
        query = sgkq(["w0"], 2.0)
        with ProcessCluster.start(
            fragments, indexes, num_machines=2, network_model=model
        ) as cluster:
            response = cluster.execute(query)
            assert response.wall_seconds >= 2 * model.latency_seconds
            assert response.result_nodes == CentralizedEvaluator(net).results(query)
