"""Heavy-hitter attribution: Space-Saving bounds, sketch, exposition."""

from __future__ import annotations

import random
from collections import Counter

from repro.obs.hotspots import HotSpotSketch, SpaceSaving, render_hotspots
from repro.obs.prometheus import parse_prometheus_text
from repro.obs.trace import SpanCollector


class TestSpaceSaving:
    def test_exact_below_capacity(self):
        sketch = SpaceSaving(capacity=8)
        for key, weight in [("a", 3.0), ("b", 1.0), ("a", 2.0)]:
            sketch.offer(key, weight)
        assert sketch.top(8) == [("a", 5.0, 0.0), ("b", 1.0, 0.0)]
        assert sketch.total == 6.0

    def test_eviction_inherits_the_minimum_as_error(self):
        sketch = SpaceSaving(capacity=2)
        sketch.offer("a", 10.0)
        sketch.offer("b", 1.0)
        sketch.offer("c", 1.0)  # evicts b (count 1): c = 1 + 1, error 1
        assert len(sketch) == 2
        top = dict((k, (c, e)) for k, c, e in sketch.top(2))
        assert top["a"] == (10.0, 0.0)
        assert top["c"] == (2.0, 1.0)

    def test_nonpositive_weights_are_ignored(self):
        sketch = SpaceSaving(capacity=2)
        sketch.offer("a", 0.0)
        sketch.offer("a", -1.0)
        assert len(sketch) == 0 and sketch.total == 0.0

    def test_zipf_stream_bounds_hold(self):
        """The classic guarantees on a skewed stream.

        For every tracked key: ``estimate - error <= true <= estimate``,
        and every key with true weight above ``total / capacity`` is
        tracked (so the top hitters cannot be missed).
        """
        rng = random.Random(42)
        capacity = 16
        keys = [f"kw{i:03d}" for i in range(200)]
        # Zipf-ish: key i drawn with probability proportional to 1/(i+1).
        weights = [1.0 / (i + 1) for i in range(len(keys))]
        sketch = SpaceSaving(capacity)
        exact: Counter = Counter()
        for _ in range(20_000):
            key = rng.choices(keys, weights)[0]
            sketch.offer(key, 1.0)
            exact[key] += 1.0

        tracked = {key: (count, error) for key, count, error in sketch.top(capacity)}
        for key, (count, error) in tracked.items():
            true = exact.get(key, 0.0)
            assert count - error <= true <= count, key
        guarantee = sketch.total / capacity
        for key, true in exact.items():
            if true > guarantee:
                assert key in tracked, (key, true, guarantee)

    def test_top_k_matches_exact_heads_on_skew(self):
        """With real skew the sketch's head IS the exact head."""
        rng = random.Random(7)
        keys = [f"kw{i}" for i in range(50)]
        weights = [1.0 / (i + 1) ** 1.5 for i in range(len(keys))]
        sketch = SpaceSaving(32)
        exact: Counter = Counter()
        for _ in range(30_000):
            key = rng.choices(keys, weights)[0]
            sketch.offer(key)
            exact[key] += 1
        top_sketch = [key for key, _, _ in sketch.top(5)]
        top_exact = [key for key, _ in exact.most_common(5)]
        assert top_sketch == top_exact


class TestHotSpotSketch:
    def test_observe_eval_feeds_all_dimensions(self):
        sketch = HotSpotSketch(capacity=8)
        sketch.observe_eval("cafe", 3, 0.5)
        sketch.observe_eval("cafe", 4, 0.25)
        sketch.observe_eval("bar", 3, 0.125)
        snapshot = sketch.snapshot()
        assert snapshot["evals"] == 3
        assert snapshot["eval_seconds"] == 0.875
        by_seconds = {
            dim: {e["key"]: e["seconds"] for e in entries}
            for dim, entries in snapshot["by_seconds"].items()
        }
        assert by_seconds["keyword"] == {"cafe": 0.75, "bar": 0.125}
        assert by_seconds["fragment"] == {"f3": 0.625, "f4": 0.25}
        assert by_seconds["pair"]["cafe×f3"] == 0.5

    def test_feed_spans_filters_to_closed_eval_spans(self):
        collector = SpanCollector("t1")
        with collector.span("eval", parent_id=None, fragment_id=2, source="cafe"):
            pass
        with collector.span("union", parent_id=None, fragment_id=2):
            pass
        open_span = collector.start("eval", parent_id=None, fragment_id=2, source="x")
        assert open_span.end is None
        untagged = collector.start("eval", parent_id=None, fragment_id=2)
        untagged.finish()

        sketch = HotSpotSketch(capacity=8)
        sketch.feed_spans(collector.spans)
        snapshot = sketch.snapshot()
        assert snapshot["evals"] == 1
        assert [e["key"] for e in snapshot["by_count"]["keyword"]] == ["cafe"]

    def test_features_rows_pair_keyword_with_fragment(self):
        sketch = HotSpotSketch(capacity=8)
        for _ in range(3):
            sketch.observe_eval("cafe", 1, 0.2)
        sketch.observe_eval("bar", 2, 0.1)
        rows = {(row["keyword"], row["fragment"]): row for row in sketch.features()}
        assert rows[("cafe", 1)]["count"] == 3
        assert rows[("cafe", 1)]["seconds"] == 0.6
        assert rows[("cafe", 1)]["seconds_error"] == 0.0
        assert rows[("bar", 2)]["count"] == 1

    def test_location_terms_need_no_fragment(self):
        sketch = HotSpotSketch(capacity=8)
        sketch.observe_eval("#17", None, 0.3)
        snapshot = sketch.snapshot()
        assert snapshot["by_seconds"]["keyword"][0]["key"] == "#17"
        assert snapshot["by_seconds"]["fragment"] == []
        assert snapshot["by_seconds"]["pair"] == []


class TestRenderHotspots:
    def test_cardinality_is_capped_at_k_per_dimension(self):
        sketch = HotSpotSketch(capacity=32)
        for i in range(30):
            sketch.observe_eval(f"kw{i}", i, float(30 - i))
        text = render_hotspots(sketch.snapshot(k=30), k=4)
        samples = parse_prometheus_text(text)
        for metric in (
            "repro_hotspot_eval_seconds_total",
            "repro_hotspot_evals_total",
        ):
            for dim in HotSpotSketch.DIMENSIONS:
                count = sum(
                    1
                    for (name, labels) in samples
                    if name == metric and ("dim", dim) in labels
                )
                assert count == 4, (metric, dim)

    def test_adversarial_keywords_round_trip(self):
        sketch = HotSpotSketch(capacity=8)
        hostile = 'kw"quote\\slash\nnewline}brace'
        sketch.observe_eval(hostile, 0, 1.5)
        text = render_hotspots(sketch.snapshot())
        samples = parse_prometheus_text(text)
        keys = {
            dict(labels).get("key")
            for (name, labels) in samples
            if name == "repro_hotspot_eval_seconds_total"
        }
        assert hostile in keys
        assert f"{hostile}×f0" in keys

    def test_empty_snapshot_renders_headers_only(self):
        sketch = HotSpotSketch(capacity=4)
        text = render_hotspots(sketch.snapshot())
        assert parse_prometheus_text(text) == {}
