"""Unit tests for the obs primitives: spans, tracer, events, exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Event,
    EventLog,
    JsonlTraceSink,
    Span,
    SpanCollector,
    TraceContext,
    Tracer,
    assemble_tree,
    chrome_trace_events,
    format_trace,
    new_span_id,
    new_trace_id,
    parse_prometheus_text,
    render_prometheus,
    write_chrome_trace,
)


class TestTraceContext:
    def test_wire_round_trip(self):
        context = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
        assert TraceContext.from_wire(context.to_wire()) == context

    def test_child_rebinds_parent(self):
        root = TraceContext(trace_id="t")
        child = root.child("abc")
        assert child.trace_id == "t"
        assert child.span_id == "abc"

    def test_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 32 for i in ids)
        assert all(len(new_span_id()) == 16 for _ in range(4))


class TestSpanCollector:
    def test_start_and_finish(self):
        collector = SpanCollector("t")
        span = collector.start("query", machine_id=2, fragment_id=1, color="red")
        assert span.end is None
        assert span.duration_seconds == 0.0
        span.finish()
        assert span.end is not None
        assert span.duration_seconds >= 0.0
        # finish is idempotent
        end = span.end
        span.finish()
        assert span.end == end

    def test_span_context_manager_times_the_body(self):
        collector = SpanCollector("t")
        with collector.span("task") as span:
            pass
        assert span.end is not None
        assert collector.spans == [span]

    def test_record_closed_span_and_extend(self):
        collector = SpanCollector("t")
        collector.record("queue-wait", 1.0, 2.5, bytes=17)
        other = SpanCollector("t")
        other.extend(collector.spans)
        assert other.spans[0].duration_seconds == pytest.approx(1.5)
        assert other.spans[0].tags == {"bytes": 17}

    def test_span_dict_round_trip(self):
        span = Span(
            trace_id="t",
            span_id="s",
            parent_id="p",
            name="eval",
            start=1.0,
            end=2.0,
            machine_id=3,
            fragment_id=7,
            tags={"cache": "hit"},
        )
        assert Span.from_dict(span.to_dict()) == span


class TestTracer:
    def test_rate_zero_never_samples(self):
        tracer = Tracer(sample_rate=0.0)
        assert all(tracer.maybe_trace() is None for _ in range(50))
        assert tracer.counts == {"seen": 50, "sampled": 0, "stored": 0}

    def test_rate_one_always_samples(self):
        tracer = Tracer(sample_rate=1.0)
        contexts = [tracer.maybe_trace() for _ in range(10)]
        assert all(c is not None for c in contexts)
        assert len({c.trace_id for c in contexts}) == 10
        assert tracer.counts["sampled"] == 10

    def test_seeded_sampling_is_deterministic(self):
        a = Tracer(sample_rate=0.5, seed=7)
        b = Tracer(sample_rate=0.5, seed=7)
        pattern_a = [a.maybe_trace() is not None for _ in range(40)]
        pattern_b = [b.maybe_trace() is not None for _ in range(40)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_storage_is_bounded_and_ordered(self):
        tracer = Tracer(sample_rate=1.0, capacity=3)
        for i in range(5):
            tracer.record(f"t{i}", [], index=i)
        recent = tracer.recent(10)
        assert [r["trace_id"] for r in recent] == ["t2", "t3", "t4"]
        assert tracer.get("t0") is None
        assert tracer.get("t4")["index"] == 4

    def test_span_truncation(self):
        tracer = Tracer(sample_rate=1.0, max_spans_per_trace=2)
        collector = SpanCollector("t")
        for _ in range(5):
            collector.start("eval").finish()
        record = tracer.record("t", collector.spans)
        assert len(record["spans"]) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestAssembleTree:
    def _spans(self):
        collector = SpanCollector("t")
        root = collector.start("query", at=0.0)
        d0 = collector.start("dispatch", parent_id=root.span_id, at=1.0)
        collector.start("task", parent_id=d0.span_id, at=3.0).finish(at=4.0)
        collector.start("queue-wait", parent_id=d0.span_id, at=2.0).finish(at=3.0)
        d0.finish(at=5.0)
        root.finish(at=6.0)
        return collector.spans

    def test_nesting_and_child_order(self):
        roots = assemble_tree(self._spans())
        assert len(roots) == 1
        (dispatch,) = roots[0]["children"]
        assert [c["name"] for c in dispatch["children"]] == ["queue-wait", "task"]

    def test_orphans_surface_as_roots(self):
        spans = self._spans()
        orphan = Span(
            trace_id="t",
            span_id="x",
            parent_id="missing-parent",
            name="eval",
            start=0.5,
            end=0.6,
        )
        roots = assemble_tree(spans + [orphan])
        assert {r["name"] for r in roots} == {"query", "eval"}

    def test_format_trace_mentions_every_stage(self):
        text = format_trace(self._spans())
        for name in ("query", "dispatch", "queue-wait", "task"):
            assert name in text
        assert "ms" in text


class TestEventLog:
    def test_bounded_ring_keeps_newest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("tick", index=i)
        tail = log.tail()
        assert [e["index"] for e in tail] == [2, 3, 4]
        assert log.total == 5
        log.clear()
        assert log.tail() == []
        assert log.total == 5

    def test_event_dict_flattens_fields(self):
        event = Event(kind="epoch_swap", wall_time=1.0, monotonic=2.0, fields={"epoch": 3})
        record = event.to_dict()
        assert record["kind"] == "epoch_swap"
        assert record["epoch"] == 3


class TestJsonlTraceSink:
    def test_appends_json_lines(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "traces.jsonl"))
        sink.write({"trace_id": "a", "spans": []})
        sink.write({"trace_id": "b", "spans": []})
        lines = (tmp_path / "traces.jsonl").read_text().splitlines()
        assert [json.loads(line)["trace_id"] for line in lines] == ["a", "b"]
        assert sink.written == 2

    def test_rotation_keeps_bounded_backups(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonlTraceSink(str(path), max_bytes=80, backups=2)
        for i in range(20):
            sink.write({"trace_id": f"trace-{i:04d}", "spans": []})
        assert path.exists()
        assert (tmp_path / "traces.jsonl.1").exists()
        assert (tmp_path / "traces.jsonl.2").exists()
        assert not (tmp_path / "traces.jsonl.3").exists()
        # the live file holds the newest record
        last = json.loads(path.read_text().splitlines()[-1])
        assert last["trace_id"] == "trace-0019"

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceSink(str(tmp_path / "x"), max_bytes=0)
        with pytest.raises(ValueError):
            JsonlTraceSink(str(tmp_path / "x"), backups=-1)


class TestChromeExport:
    def _spans(self):
        collector = SpanCollector("t")
        root = collector.start("query", at=10.0)
        task = collector.start("task", parent_id=root.span_id, at=10.1, machine_id=1, fragment_id=2)
        task.finish(at=10.3)
        root.finish(at=10.5)
        return collector.spans

    def test_events_are_rebased_and_mapped(self):
        payload = chrome_trace_events(self._spans())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in events) == 0.0
        query = next(e for e in events if e["name"] == "query")
        task = next(e for e in events if e["name"] == "task")
        assert query["pid"] == 0  # coordinator
        assert task["pid"] == 2  # machine 1
        assert task["tid"] == 3  # fragment 2
        assert task["dur"] == pytest.approx(0.2e6)
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata}
        assert names == {"coordinator", "machine 1"}

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        spans = [span.to_dict() for span in self._spans()]
        count = write_chrome_trace(str(path), [{"trace_id": "t", "spans": spans}])
        assert count == len(spans)
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len([e for e in loaded["traceEvents"] if e["ph"] == "X"]) == count


class TestPrometheus:
    def _state(self):
        return {
            "counters": {"completed": 12, "shed": 1},
            "gauges": {"inflight": {"current": 2.0, "peak": 5.0}},
            "histograms": {
                "latency_seconds": {
                    "count": 12,
                    "sum": 0.6,
                    "max": 0.2,
                    "quantiles": {"0.5": 0.04, "0.95": 0.15, "0.99": 0.19},
                }
            },
            "busy_seconds": {"0": 1.5, "1": 2.5},
        }

    def test_render_and_parse_round_trip(self):
        text = render_prometheus(self._state())
        samples = parse_prometheus_text(text)
        assert samples[("repro_completed_total", ())] == 12.0
        assert samples[("repro_inflight", ())] == 2.0
        assert samples[("repro_inflight_peak", ())] == 5.0
        assert samples[("repro_latency_seconds", (("quantile", "0.95"),))] == 0.15
        assert samples[("repro_latency_seconds_count", ())] == 12.0
        assert samples[("repro_latency_seconds_max", ())] == 0.2
        assert samples[("repro_machine_busy_seconds_total", (("machine", "1"),))] == 2.5

    def test_type_lines_present(self):
        text = render_prometheus(self._state())
        assert "# TYPE repro_completed_total counter" in text
        assert "# TYPE repro_latency_seconds summary" in text
        assert "# TYPE repro_inflight gauge" in text

    def test_parser_skips_malformed_lines(self):
        samples = parse_prometheus_text("# comment\ngarbage{\nvalid_metric 1.0\n")
        assert samples == {("valid_metric", ()): 1.0}


class TestLabelEscapingRoundTrip:
    """Render-side escaping must invert parse-side unescaping exactly.

    The exposition format escapes backslash, double quote and newline
    in label values; everything else passes through verbatim.  The
    hypothesis sweep feeds adversarial values (closing braces, equals
    signs, escape collisions like a literal ``\\n``) through a rendered
    sample line and back.
    """

    def test_escape_examples(self):
        from repro.obs import escape_label_value

        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        # A literal backslash-n must not collide with an escaped newline.
        assert escape_label_value("a\\nb") == "a\\\\nb"
        assert escape_label_value("}{=,") == "}{=,"

    def _round_trip(self, value):
        from repro.obs import escape_label_value

        line = f'sample_metric{{label="{escape_label_value(value)}"}} 1.0'
        return parse_prometheus_text(line)

    def test_brace_inside_quotes_does_not_end_the_label_set(self):
        samples = self._round_trip('closing } brace, quote=" and \\')
        assert samples == {
            ("sample_metric", (("label", 'closing } brace, quote=" and \\'),)): 1.0
        }

    def test_hypothesis_adversarial_values(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        # Concentrated adversarial alphabet: every structural character
        # of the format plus the escape triggers themselves.
        hostile = st.text(
            alphabet=st.sampled_from(list('"\\\n{}=, nab')), max_size=24
        )

        @given(value=hostile)
        @settings(max_examples=200, deadline=None)
        def check(value):
            samples = self._round_trip(value)
            assert samples == {("sample_metric", (("label", value),)): 1.0}

        check()

    def test_hypothesis_general_unicode(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        # splitlines() treats these as line breaks but the format only
        # escapes \n; such values are out of contract for a text
        # exposition, so the sweep excludes them.
        breakers = "\r\x0b\x0c\x1c\x1d\x1e\x85  "
        general = st.text(
            alphabet=st.characters(exclude_characters=breakers), max_size=32
        )

        @given(value=general)
        @settings(max_examples=100, deadline=None)
        def check(value):
            samples = self._round_trip(value)
            assert samples == {("sample_metric", (("label", value),)): 1.0}

        check()
