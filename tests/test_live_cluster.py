"""Distributed epoch application: simulated, process, and pipelined clusters.

The contract under test: after ``apply_updates`` ships an epoch delta,
every cluster answers queries exactly as a centralized oracle on the
updated network — and on the pipelined cluster, queries concurrent with
the swap observe either the old epoch or the new one, never a torn mix.
"""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro import sgkq
from repro.baselines import CentralizedEvaluator
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.dist import ProcessCluster, SimulatedCluster
from repro.exceptions import ClusterError
from repro.live import AddKeyword, EpochManager, RemoveKeyword
from repro.partition import BfsPartitioner
from repro.serve import PipelinedCluster
from repro.workloads import UpdateGenConfig, UpdateStreamGenerator

from helpers import make_random_network


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=650, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=6).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, partition, fragments, indexes


def swap_via_manager(built, seed: int, num_ops: int = 8):
    """One applied batch: (manager, swap, delta pairs for the cluster)."""
    net, partition, fragments, indexes = built
    manager = EpochManager(
        network=net,
        partition=partition,
        fragments=list(fragments),
        indexes=list(indexes),
    )
    gen = UpdateStreamGenerator(net, UpdateGenConfig(seed=seed))
    swap = manager.apply(gen.ops(num_ops))
    delta = manager.state.delta_from(swap.changed_fragments)
    return manager, swap, list(delta.values())


def probe_queries(network):
    keywords = sorted(network.all_keywords())[:2]
    for radius in (1.5, 4.0):
        yield sgkq(keywords, radius)


class TestSimulatedCluster:
    def test_apply_then_query_matches_oracle(self, built):
        _net, _partition, fragments, indexes = built
        manager, swap, replacements = swap_via_manager(built, seed=20)
        cluster = SimulatedCluster.from_fragments(fragments, indexes)
        report = cluster.apply_updates(swap.epoch, replacements)
        assert report["epoch"] == 1
        assert tuple(sorted(report["swapped_fragments"])) == swap.changed_fragments
        assert report["total_message_bytes"] > 0
        assert cluster.current_epoch == 1
        oracle = CentralizedEvaluator(manager.state.network)
        for query in probe_queries(manager.state.network):
            assert cluster.execute(query).result_nodes == oracle.results(query)

    def test_stale_epoch_rejected(self, built):
        _net, _partition, fragments, indexes = built
        _manager, swap, replacements = swap_via_manager(built, seed=21)
        cluster = SimulatedCluster.from_fragments(fragments, indexes)
        cluster.apply_updates(swap.epoch, replacements)
        with pytest.raises(ClusterError, match="epoch must advance"):
            cluster.apply_updates(swap.epoch, replacements)

    def test_subscriber_glue_applies_every_batch(self, built):
        """The CLI wiring: manager swaps fan straight into the cluster."""
        net, partition, fragments, indexes = built
        cluster = SimulatedCluster.from_fragments(fragments, indexes)
        manager = EpochManager(
            network=net,
            partition=partition,
            fragments=list(fragments),
            indexes=list(indexes),
        )
        manager.subscribe(
            lambda state, delta: cluster.apply_updates(state.epoch, list(delta.values()))
        )
        gen = UpdateStreamGenerator(net, UpdateGenConfig(seed=22))
        for batch in gen.batches(3, 5):
            manager.apply(batch)
        assert cluster.current_epoch == 3
        oracle = CentralizedEvaluator(manager.state.network)
        for query in probe_queries(manager.state.network):
            assert cluster.execute(query).result_nodes == oracle.results(query)


class TestProcessCluster:
    def test_apply_then_query_matches_oracle(self, built):
        net, _partition, fragments, indexes = built
        manager, swap, replacements = swap_via_manager(built, seed=23)
        old_oracle = CentralizedEvaluator(net)
        new_oracle = CentralizedEvaluator(manager.state.network)
        query = next(probe_queries(net))
        with ProcessCluster.start(fragments, indexes, num_machines=4) as cluster:
            assert cluster.execute(query).result_nodes == old_oracle.results(query)
            report = cluster.apply_updates(swap.epoch, replacements)
            assert report["epoch"] == 1
            assert sorted(report["swapped_fragments"]) == list(swap.changed_fragments)
            assert report["wall_seconds"] > 0
            assert cluster.current_epoch == 1
            for probe in probe_queries(manager.state.network):
                assert cluster.execute(probe).result_nodes == new_oracle.results(probe)

    def test_fewer_machines_than_fragments(self, built):
        _net, _partition, fragments, indexes = built
        manager, swap, replacements = swap_via_manager(built, seed=24)
        new_oracle = CentralizedEvaluator(manager.state.network)
        with ProcessCluster.start(fragments, indexes, num_machines=2) as cluster:
            cluster.apply_updates(swap.epoch, replacements)
            for probe in probe_queries(manager.state.network):
                assert cluster.execute(probe).result_nodes == new_oracle.results(probe)


class TestPipelinedCluster:
    def test_apply_then_query_matches_oracle(self, built):
        _net, _partition, fragments, indexes = built
        manager, swap, replacements = swap_via_manager(built, seed=25)
        new_oracle = CentralizedEvaluator(manager.state.network)
        with PipelinedCluster.start(fragments, indexes, num_machines=4) as cluster:
            report = cluster.apply_updates(swap.epoch, replacements)
            assert report["epoch"] == 1
            assert cluster.current_epoch == 1
            for probe in probe_queries(manager.state.network):
                assert cluster.execute(probe).result_nodes == new_oracle.results(probe)

    def test_stale_epoch_rejected(self, built):
        _net, _partition, fragments, indexes = built
        _manager, swap, replacements = swap_via_manager(built, seed=26)
        with PipelinedCluster.start(fragments, indexes, num_machines=2) as cluster:
            cluster.apply_updates(swap.epoch, replacements)
            with pytest.raises(ClusterError, match="epoch must advance"):
                cluster.submit_updates(swap.epoch, replacements)

    @pytest.mark.parametrize("use_shm", [False, True], ids=["pickled", "shm"])
    def test_queries_never_observe_torn_epoch(self, built, use_shm):
        """Satellite: concurrent queries see all-old or all-new, never a mix.

        The update flips every carrier of one keyword: the old and the
        new answer sets are disjoint, so any torn read (some machines on
        epoch 0, others on epoch 1) would surface as a blended result.
        Runs over both worker data planes — pickled runtimes and
        shared-memory segments — because the shm path swaps epochs by
        remapping arrays in place, which is exactly where a torn read
        would originate.
        """
        net, partition, fragments, indexes = built
        keyword = "w0"
        carriers = sorted(n for n in net.object_nodes() if keyword in net.keywords(n))
        others = sorted(n for n in net.object_nodes() if keyword not in net.keywords(n))
        assert carriers and len(others) >= 2
        flipped = others[:4]
        ops = [RemoveKeyword(n, keyword) for n in carriers] + [
            AddKeyword(n, keyword) for n in flipped
        ]
        manager = EpochManager(
            network=net,
            partition=partition,
            fragments=list(fragments),
            indexes=list(indexes),
        )
        # Radius below the minimum edge weight: the answer is exactly the
        # carrier set, which the flip replaces wholesale.
        query = sgkq([keyword], 0.01)
        old_answer = frozenset(carriers)
        new_answer = frozenset(flipped)

        observed: list[frozenset[int]] = []
        failures: list[str] = []
        stop = threading.Event()
        with PipelinedCluster.start(
            fragments, indexes, num_machines=4, use_shm=use_shm
        ) as cluster:
            assert cluster.execute(query).result_nodes == old_answer

            def _probe() -> None:
                while not stop.is_set():
                    try:
                        observed.append(
                            frozenset(
                                cluster.execute(query, timeout_seconds=30).result_nodes
                            )
                        )
                    except ClusterError as error:  # pragma: no cover
                        failures.append(str(error))
                        return

            threads = [threading.Thread(target=_probe) for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let queries pile into the pipes
            swap = manager.apply(ops)
            delta = manager.state.delta_from(swap.changed_fragments)
            cluster.apply_updates(swap.epoch, list(delta.values()))
            post = frozenset(cluster.execute(query).result_nodes)
            time.sleep(0.05)
            stop.set()
            for thread in threads:
                thread.join()

        assert not failures, failures
        assert post == new_answer
        assert observed, "the probes never completed a query"
        for result in observed:
            assert result in (old_answer, new_answer), (
                f"torn epoch observed: {sorted(result)} is neither the old "
                f"{sorted(old_answer)} nor the new {sorted(new_answer)} answer"
            )

    def test_apply_completes_and_serves_after_worker_death(self, built):
        """Satellite: a dead worker degrades the apply, never hangs it."""
        _net, _partition, fragments, indexes = built
        manager, swap, replacements = swap_via_manager(built, seed=27)
        new_oracle = CentralizedEvaluator(manager.state.network)
        query = next(probe_queries(manager.state.network))
        cluster = PipelinedCluster.start(fragments, indexes, num_machines=4)
        try:
            cluster._processes[1].kill()
            for _ in range(100):
                if cluster.degraded:
                    break
                threading.Event().wait(0.05)
            assert cluster.degraded

            report = cluster.apply_updates(swap.epoch, replacements, timeout_seconds=30)
            assert report["epoch"] == 1
            assert cluster.current_epoch == 1
            # The survivors serve the new epoch (a subset of the full answer).
            response = cluster.execute(query, timeout_seconds=15)
            assert response.degraded
            assert response.result_nodes <= new_oracle.results(query)
        finally:
            cluster.shutdown()


def _devshm_has(name: str) -> bool:
    import os

    return os.path.exists(f"/dev/shm/{name}")


class TestSharedMemoryLifecycle:
    """Satellite: the shm data plane never leaks segments.

    Segment names are taken from the coordinator's
    ``SharedSegmentStore`` and checked against ``/dev/shm`` directly, so
    a leak shows up as an orphaned file the OS would keep until reboot.
    """

    def test_double_attach_is_idempotent(self, built):
        from repro.shm import ShmWorkerRuntimes, SharedSegmentStore

        _net, _partition, fragments, indexes = built
        store = SharedSegmentStore()
        manifest = store.publish(fragments[0], indexes[0], epoch=0)
        try:
            registry = ShmWorkerRuntimes()
            assert registry.attach([manifest]) == [fragments[0].fragment_id]
            first = registry.runtimes()[0]
            # Same manifest again: no re-map, no new runtime, no swap.
            assert registry.attach([manifest]) == []
            assert registry.runtimes()[0] is first
            assert len(registry.runtimes()) == 1
            registry.release_all()
            # Releasing the attach must not unlink the coordinator's segment.
            assert _devshm_has(manifest.name)
        finally:
            store.unlink_all()
        assert not _devshm_has(manifest.name)

    def test_epoch_swap_retires_superseded_segments(self, built):
        """Old-epoch segments are unlinked once every machine acks."""
        _net, _partition, fragments, indexes = built
        manager, swap, replacements = swap_via_manager(built, seed=28)
        new_oracle = CentralizedEvaluator(manager.state.network)
        with PipelinedCluster.start(
            fragments, indexes, num_machines=4, use_shm=True
        ) as cluster:
            store = cluster._shm_store
            assert store is not None
            before = set(store.segment_names())
            assert len(before) == len(fragments)
            assert all(_devshm_has(name) for name in before)

            cluster.apply_updates(swap.epoch, replacements)

            after = set(store.segment_names())
            # One live segment per fragment, with the changed fragments'
            # epoch-0 segments replaced and unlinked from /dev/shm.
            assert len(after) == len(fragments)
            retired = before - after
            assert len(retired) == len(swap.changed_fragments)
            assert all(not _devshm_has(name) for name in retired)
            assert all(_devshm_has(name) for name in after)
            for probe in probe_queries(manager.state.network):
                assert cluster.execute(probe).result_nodes == new_oracle.results(probe)
        # Shutdown unlinks every remaining segment.
        assert all(not _devshm_has(name) for name in before | after)

    def test_worker_crash_mid_query_leaks_no_segments(self, built):
        """A killed worker releases its leases; shutdown leaves /dev/shm clean."""
        _net, _partition, fragments, indexes = built
        query = next(probe_queries(_net))
        cluster = PipelinedCluster.start(fragments, indexes, num_machines=4, use_shm=True)
        names: list[str] = []
        try:
            names = cluster._shm_store.segment_names()
            assert names and all(_devshm_has(name) for name in names)

            stop = threading.Event()

            def _hammer() -> None:
                while not stop.is_set():
                    try:
                        cluster.execute(query, timeout_seconds=10)
                    except ClusterError:
                        return  # degraded shed — the crash landed mid-query

            threads = [threading.Thread(target=_hammer) for _ in range(2)]
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let queries reach the worker pipes
            cluster._processes[2].kill()
            for _ in range(100):
                if cluster.degraded:
                    break
                time.sleep(0.05)
            stop.set()
            for thread in threads:
                thread.join()
            assert cluster.degraded
            # Survivors still answer (possibly a subset) on shared pages.
            response = cluster.execute(query, timeout_seconds=15)
            assert response.degraded
        finally:
            cluster.shutdown()
        assert all(not _devshm_has(name) for name in names)
