"""Tests for :class:`DisksEngine` (build, query, reporting, bi-level)."""

from __future__ import annotations

import math

import pytest

from repro import DisksEngine, EngineConfig, sgkq
from repro.baselines import CentralizedEvaluator
from repro.exceptions import DisksError, RadiusExceededError, UnknownKeywordError
from repro.graph import RoadNetworkBuilder
from repro.partition import BfsPartitioner

from helpers import make_random_network


@pytest.fixture(scope="module")
def net():
    return make_random_network(seed=500, num_junctions=30, num_objects=15, vocabulary=5)


@pytest.fixture(scope="module")
def engine(net):
    return DisksEngine.build(
        net,
        EngineConfig(num_fragments=4, lambda_factor=4.0, partitioner=BfsPartitioner(seed=1)),
    )


class TestBuild:
    def test_empty_network_rejected(self):
        with pytest.raises(DisksError):
            DisksEngine.build(RoadNetworkBuilder().build())

    def test_structure(self, engine, net):
        assert engine.network is net
        assert len(engine.fragments) == 4
        assert len(engine.indexes) == 4
        assert engine.partition.num_fragments == 4
        assert engine.max_radius == pytest.approx(4.0 * net.average_edge_weight)
        assert len(engine.build_stats) == 4

    def test_index_size_report(self, engine):
        report = engine.index_size_report()
        assert len(report) == 4
        for entry in report:
            assert entry["total_distances"] >= entry["shortcuts"]

    def test_build_stats_counters(self, engine):
        for stats in engine.build_stats:
            assert stats.settled_nodes > 0
            assert stats.wall_seconds >= 0.0


class TestQueryReports:
    def test_report_fields(self, engine, net):
        query = sgkq(["w0", "w1"], engine.max_radius / 2)
        report = engine.execute(query)
        assert report.query_label == query.label
        assert report.num_results == len(report.result_nodes)
        assert report.response_seconds > 0.0
        assert report.communication_seconds > 0.0
        assert report.total_task_seconds >= max(report.fragment_seconds.values())
        assert set(report.fragment_seconds) == {0, 1, 2, 3}
        assert set(report.machine_seconds) == {0, 1, 2, 3}
        assert report.total_message_bytes > 0
        assert not report.used_unbounded_level
        assert report.unbalance >= 1.0
        assert len(report.coverage_sizes[0]) == 2

    def test_results_match_oracle(self, engine, net):
        query = sgkq(["w0", "w2"], engine.max_radius)
        assert engine.results(query) == CentralizedEvaluator(net).results(query)

    def test_unknown_keyword_strict_by_default(self, engine):
        with pytest.raises(UnknownKeywordError):
            engine.execute(sgkq(["missing"], 1.0))

    def test_lenient_keywords_give_empty_intersection(self, net):
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=2,
                lambda_factor=4.0,
                strict_keywords=False,
                partitioner=BfsPartitioner(seed=2),
            ),
        )
        assert engine.results(sgkq(["missing", "w0"], 2.0)) == frozenset()

    def test_radius_over_maxr_without_bilevel(self, engine):
        with pytest.raises(RadiusExceededError):
            engine.execute(sgkq(["w0"], engine.max_radius * 2))

    def test_speedup_property(self, engine):
        report = engine.execute(sgkq(["w0"], engine.max_radius / 2))
        assert report.speedup_over_serial > 0.0


class TestBiLevelEngine:
    def test_oversized_radius_served_by_second_level(self, net):
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=3,
                lambda_factor=2.0,
                build_unbounded_level=True,
                partitioner=BfsPartitioner(seed=3),
            ),
        )
        big_radius = engine.max_radius * 3
        report = engine.execute(sgkq(["w0", "w1"], big_radius))
        assert report.used_unbounded_level
        expected = CentralizedEvaluator(net).results(sgkq(["w0", "w1"], big_radius))
        assert report.result_nodes == expected

    def test_small_radius_stays_on_bounded_level(self, net):
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=3,
                lambda_factor=2.0,
                build_unbounded_level=True,
                partitioner=BfsPartitioner(seed=3),
            ),
        )
        report = engine.execute(sgkq(["w0"], engine.max_radius / 2))
        assert not report.used_unbounded_level

    def test_bilevel_build_stats_cover_both_levels(self, net):
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=2,
                lambda_factor=2.0,
                build_unbounded_level=True,
                partitioner=BfsPartitioner(seed=4),
            ),
        )
        assert len(engine.build_stats) == 4  # 2 fragments x 2 levels


class TestMachineMapping:
    def test_fewer_machines_than_fragments(self, net):
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=4,
                lambda_factor=4.0,
                num_machines=2,
                partitioner=BfsPartitioner(seed=5),
            ),
        )
        query = sgkq(["w0"], engine.max_radius / 2)
        report = engine.execute(query)
        assert set(report.machine_seconds) == {0, 1}
        assert len(report.fragment_seconds) == 4
        assert engine.results(query) == CentralizedEvaluator(net).results(query)


class TestEdgeRadii:
    def test_zero_maxr_index_answers_containment_queries(self):
        """maxR = 0 is a degenerate but legal index: r = 0 queries work."""
        from repro.baselines import CentralizedEvaluator

        from helpers import make_random_network

        zero_net = make_random_network(seed=5, num_junctions=15, num_objects=8, vocabulary=3)
        zero_engine = DisksEngine.build(
            zero_net,
            EngineConfig(
                num_fragments=2,
                lambda_factor=None,
                max_radius=0.0,
                partitioner=BfsPartitioner(seed=5),
            ),
        )
        keyword = sorted(zero_net.all_keywords())[0]
        query = sgkq([keyword], 0.0)
        expected = CentralizedEvaluator(zero_net).results(query)
        assert zero_engine.results(query) == expected
        assert expected == frozenset(
            n for n in zero_net.nodes() if keyword in zero_net.keywords(n)
        )

    def test_zero_maxr_rejects_positive_radius(self):
        from repro.exceptions import RadiusExceededError

        from helpers import make_random_network

        zero_net = make_random_network(seed=6, num_junctions=12, num_objects=6)
        zero_engine = DisksEngine.build(
            zero_net,
            EngineConfig(
                num_fragments=2,
                lambda_factor=None,
                max_radius=0.0,
                partitioner=BfsPartitioner(seed=6),
            ),
        )
        keyword = sorted(zero_net.all_keywords())[0]
        with pytest.raises(RadiusExceededError):
            zero_engine.execute(sgkq([keyword], 1.0))
