"""Tests for the subscription routing index (`repro.sub.registry`).

The correctness bar for routing is *iff*: a subscription must be routed
to a delta exactly when one of its terms (keywords) or a fragment
intersecting its coverage radius changed — a miss serves stale results,
a spurious hit burns the re-evaluation budget.
"""

from __future__ import annotations

import math

import pytest

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.core.coverage import FragmentRuntime
from repro.core.dfunction import SetOp
from repro.core.executor import execute_fragment_task
from repro.core.queries import (
    CoverageTerm,
    KeywordSource,
    NodeSource,
    QClassQuery,
    rkq,
    sgkq,
    sgkq_extended,
)
from repro.exceptions import DisksError
from repro.partition import BfsPartitioner
from repro.sub import SubscriptionRegistry, compute_scope, restricting_terms
from repro.sub.registry import (
    Subscription,
    fragment_in_scope,
    node_source_terms,
    query_keywords,
)

from helpers import make_random_network


def build_base(seed: int, k: int = 3):
    net = make_random_network(seed=seed, num_junctions=18, num_objects=10, vocabulary=4)
    partition = BfsPartitioner(seed=seed).partition(net, k)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, fragments, list(indexes)


def chain(terms, ops):
    return QClassQuery.from_chain(tuple(terms), list(ops))


KW = [CoverageTerm(KeywordSource(f"w{i}"), 2.0) for i in range(4)]


class TestRestrictingTerms:
    def test_leaf_restricts_to_itself(self):
        query = sgkq(["w0"], 2.0)
        assert restricting_terms(query.expression) == {0}

    def test_intersection_collects_both_sides(self):
        query = rkq(5, ["w0", "w1"], 3.0)
        assert restricting_terms(query.expression) == {0, 1, 2}

    def test_subtraction_keeps_only_the_left(self):
        query = chain(KW[:2], [SetOp.SUBTRACT])
        assert restricting_terms(query.expression) == {0}
        extended = sgkq_extended(
            all_within=[("w0", 2.0), ("w1", 2.0)], none_within=[("w2", 2.0)]
        )
        restricting = restricting_terms(extended.expression)
        assert 0 in restricting and 1 in restricting
        assert len(restricting) == 2  # the subtracted term never restricts

    def test_union_keeps_only_common_restrictors(self):
        query = chain(KW[:2], [SetOp.UNION])
        assert restricting_terms(query.expression) == frozenset()

    def test_union_then_intersection(self):
        # (w0 ∪ w1) ∩ w2: only w2 provably bounds the result.
        query = chain(KW[:3], [SetOp.UNION, SetOp.INTERSECT])
        assert restricting_terms(query.expression) == {2}


class TestComputeScope:
    def test_sgkq_is_unscoped(self):
        _net, fragments, indexes = build_base(seed=70)
        assert compute_scope(sgkq(["w0", "w1"], 3.0), fragments, indexes) is None

    def test_union_of_node_terms_is_unscoped(self):
        # R(5,2) ∪ w0 — the node ball does not bound the union.
        _net, fragments, indexes = build_base(seed=70)
        query = chain(
            [CoverageTerm(NodeSource(5), 2.0), KW[0]], [SetOp.UNION]
        )
        assert compute_scope(query, fragments, indexes) is None
        assert node_source_terms(query) == []

    def test_rkq_scope_contains_home_fragment(self):
        _net, fragments, indexes = build_base(seed=71)
        location = next(iter(fragments[1].members))
        query = rkq(location, ["w0"], 2.5)
        scope = compute_scope(query, fragments, indexes)
        assert scope is not None
        assert 1 in scope

    def test_out_of_scope_fragments_are_provably_empty(self):
        """The scope claim the whole router rests on: executing the query
        on a fragment outside its scope yields nothing, and restricting
        evaluation to the scope loses nothing."""
        net, fragments, indexes = build_base(seed=72)
        for location in sorted(net.object_nodes())[:4]:
            for radius in (1.0, 3.0):
                query = rkq(location, ["w0", "w1"], radius)
                scope = compute_scope(query, fragments, indexes)
                assert scope is not None
                in_scope: set[int] = set()
                out_of_scope: set[int] = set()
                for fragment, index in zip(fragments, indexes):
                    runtime = FragmentRuntime(fragment, index)
                    local = execute_fragment_task(runtime, query).local_result
                    if fragment.fragment_id in scope:
                        in_scope |= local
                    else:
                        out_of_scope |= local
                assert out_of_scope == set()
                # Spot-check fragment_in_scope agrees with membership.
                term = query.terms[0]
                for fragment, index in zip(fragments, indexes):
                    assert fragment_in_scope(term, fragment, index) == (
                        fragment.fragment_id in scope
                    )

    def test_query_keywords_include_subtracted_terms(self):
        query = sgkq_extended(
            all_within=[("w0", 2.0), ("w1", 2.0)], none_within=[("w3", 2.0)]
        )
        assert query_keywords(query) == {"w0", "w1", "w3"}
        assert query_keywords(rkq(3, ["w2"], 1.0)) == {"w2"}


def make_sub(sub_id: str, keywords, scope) -> Subscription:
    return Subscription(
        sub_id=sub_id,
        query=sgkq(sorted(keywords) or ["w0"], 1.0),
        keywords=frozenset(keywords),
        scope=None if scope is None else frozenset(scope),
    )


@pytest.fixture()
def registry():
    reg = SubscriptionRegistry()
    reg.add(make_sub("un", {"a", "b"}, None))
    reg.add(make_sub("left", {"a"}, {0, 1}))
    reg.add(make_sub("right", {"c"}, {2}))
    return reg


class TestRouting:
    def test_keyword_delta_routes_by_term_and_fragment(self, registry):
        # Keyword `a` changed in fragment 0: the unscoped sub and the
        # sub scoped to {0,1} qualify; the {2}-scoped sub does not.
        assert registry.affected({0}, {"a"}, False) == {"un", "left"}

    def test_keyword_delta_outside_scope_misses(self, registry):
        # `c` changed, but only in fragments 0/1 — outside `right`'s scope.
        assert registry.affected({0, 1}, {"c"}, False) == set()

    def test_keyword_delta_without_matching_term_misses(self, registry):
        assert registry.affected({2}, {"zzz"}, False) == set()
        # Regression: a changed keyword no subscription indexes must not
        # blow up routing (it once did, as set |= tuple).
        assert registry.affected({0, 1, 2}, {"never-seen", "a"}, False) == {
            "un",
            "left",
        }

    def test_topology_delta_ignores_terms(self, registry):
        # Distances shifted in fragment 2: every sub scoped there plus
        # all unscoped subs qualify, regardless of keywords.
        assert registry.affected({2}, (), True) == {"un", "right"}
        assert registry.affected({0}, (), True) == {"un", "left"}

    def test_remove_cleans_both_indexes(self, registry):
        removed = registry.remove("left")
        assert removed is not None and removed.sub_id == "left"
        assert registry.remove("left") is None
        assert registry.routed_by_keyword("a") == {"un"}
        assert registry.routed_by_fragment(0) == set()
        assert registry.affected({0}, {"a"}, False) == {"un"}
        assert len(registry) == 2 and "left" not in registry

    def test_duplicate_id_rejected(self, registry):
        with pytest.raises(DisksError, match="already registered"):
            registry.add(make_sub("un", {"x"}, None))

    def test_rescope_moves_fragment_routes(self, registry):
        registry.rescope("right", frozenset({0}))
        assert registry.routed_by_fragment(2) == set()
        assert registry.routed_by_fragment(0) == {"left", "right"}
        assert registry.affected({0}, (), True) == {"un", "left", "right"}
        assert registry.affected({2}, (), True) == {"un"}

    def test_rescope_to_unscoped_and_back(self, registry):
        registry.rescope("left", None)
        assert registry.affected({2}, {"a"}, False) == {"un", "left"}
        registry.rescope("left", frozenset({1}))
        assert registry.affected({2}, {"a"}, False) == {"un"}
        assert registry.affected({1}, {"a"}, False) == {"un", "left"}

    def test_rescope_unknown_is_a_no_op(self, registry):
        registry.rescope("ghost", frozenset({0}))
        assert "ghost" not in registry

    def test_new_ids_are_sequential(self):
        reg = SubscriptionRegistry()
        assert reg.new_id() == "s1"
        assert reg.new_id() == "s2"

    def test_stats_counts_shape(self, registry):
        stats = registry.stats()
        assert stats["subscriptions"] == 3
        assert stats["scoped"] == 2
        assert stats["unscoped"] == 1
        assert stats["keywords_indexed"] == 3  # a, b, c
        assert stats["fragment_routes"] == 3  # left×{0,1} + right×{2}
        assert registry.ids() == ["un", "left", "right"]
