"""Meta-tests on API quality: docstrings, exports, picklability.

These keep the "documentation on every public item" and "workers are
plain data" promises honest as the library grows.
"""

from __future__ import annotations

import importlib
import inspect
import pickle
import pkgutil

import pytest

import repro

PUBLIC_MODULES = sorted(
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(repro.__path__, "repro.")
    if not name.split(".")[-1].startswith("_")
)


def public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            if (getattr(member, "__module__", "") or "").startswith("repro"):
                yield name, member


class TestDocstrings:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_public_classes_and_functions_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name, member in public_members(module):
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(member):
                for mname, method in vars(member).items():
                    if mname.startswith("_") or not inspect.isfunction(method):
                        continue
                    if not (method.__doc__ and method.__doc__.strip()):
                        undocumented.append(f"{name}.{mname}")
        assert not undocumented, f"{module_name}: undocumented public items {undocumented}"


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing name {name}"

    @pytest.mark.parametrize(
        "package",
        ["repro.core", "repro.graph", "repro.partition", "repro.search",
         "repro.text", "repro.dist", "repro.storage", "repro.workloads",
         "repro.baselines", "repro.bench_support", "repro.live"],
    )
    def test_subpackage_all_resolves(self, package):
        module = importlib.import_module(package)
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.__all__ exports missing {name}"


class TestPicklability:
    """Everything a worker process receives must pickle (repro.dist.parallel)."""

    def test_worker_state_pickles(self, tiny_engine):
        from repro.core.coverage import FragmentRuntime

        fragment = tiny_engine.fragments[0]
        index = tiny_engine.indexes[0]
        runtime = FragmentRuntime(fragment, index)
        for payload in (fragment, index, runtime):
            clone = pickle.loads(pickle.dumps(payload))
            assert clone is not None

    def test_queries_pickle(self):
        from repro import rkq, sgkq, sgkq_extended

        for query in (
            sgkq(["a", "b"], 2.0),
            rkq(3, ["a"], 1.0),
            sgkq_extended(all_within=[("a", 1.0)], none_within=[("b", 2.0)]),
        ):
            assert pickle.loads(pickle.dumps(query)) == query

    def test_network_pickles(self, figure1):
        clone = pickle.loads(pickle.dumps(figure1))
        assert list(clone.edges()) == list(figure1.edges())
