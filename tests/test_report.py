"""Tests for the deployment report."""

from __future__ import annotations

import math

import pytest

from repro import DisksEngine, EngineConfig
from repro.core import deployment_report
from repro.partition import BfsPartitioner
from repro.storage import index_file_size

from helpers import make_random_network


@pytest.fixture(scope="module")
def engine():
    net = make_random_network(seed=610, num_junctions=25, num_objects=12, vocabulary=4)
    return DisksEngine.build(
        net,
        EngineConfig(num_fragments=3, lambda_factor=5.0, partitioner=BfsPartitioner(seed=6)),
    )


class TestDeploymentReport:
    def test_counts_consistent(self, engine):
        report = deployment_report(engine)
        assert report.num_fragments == 3
        assert report.num_nodes == engine.network.num_nodes
        assert report.num_objects == engine.network.num_objects()
        assert sum(fr.num_members for fr in report.fragments) == report.num_nodes

    def test_sizes_match_files(self, engine):
        report = deployment_report(engine)
        for fr, index in zip(report.fragments, engine.indexes):
            assert fr.index_bytes == index_file_size(index)
        assert report.total_index_bytes == sum(fr.index_bytes for fr in report.fragments)
        assert report.mean_index_bytes == pytest.approx(report.total_index_bytes / 3)

    def test_index_summaries_match(self, engine):
        report = deployment_report(engine)
        for fr, index in zip(report.fragments, engine.indexes):
            sizes = index.size_summary()
            assert fr.num_shortcuts == sizes["shortcuts"]
            assert fr.keyword_entries == sizes["keyword_entries"]
            assert fr.keyword_pairs == sizes["keyword_pairs"]

    def test_build_seconds_positive(self, engine):
        report = deployment_report(engine)
        assert report.total_build_seconds > 0
        assert all(fr.build_seconds >= 0 for fr in report.fragments)

    def test_render_mentions_fragments(self, engine):
        text = deployment_report(engine).render()
        assert "P0:" in text and "P2:" in text
        assert "maxR" in text
        assert "cut=" in text

    def test_render_infinite_maxr(self):
        net = make_random_network(seed=611, num_junctions=12, num_objects=6)
        infinite = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=2,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=BfsPartitioner(seed=1),
            ),
        )
        assert "∞" in deployment_report(infinite).render()
