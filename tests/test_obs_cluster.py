"""Differential tracing tests across the three cluster implementations.

Two properties, per satellite (c) of the observability work:

* the span tree recorded on :class:`ProcessCluster` and
  :class:`PipelinedCluster` has the *same structure* (same stage names,
  same fragments, same nesting) as :class:`SimulatedCluster` — only the
  durations differ (modelled vs measured);
* answers are identical with tracing on vs off, on every cluster.
"""

from __future__ import annotations

import math

import pytest

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments, parse_query
from repro.dist import SimulatedCluster
from repro.dist.process_cluster import ProcessCluster
from repro.obs import SpanCollector, TraceContext, assemble_tree, new_trace_id
from repro.partition import BfsPartitioner
from repro.serve import PipelinedCluster

from helpers import make_random_network

NUM_FRAGMENTS = 4


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=909, num_junctions=22, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=9).partition(net, NUM_FRAGMENTS)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, fragments, indexes


QUERIES = [
    "NEAR(w0, 3) AND NEAR(w1, 4)",
    "HAS(w2) OR NEAR(w3, 2)",
    "NEAR(w0, 5) NOT NEAR(w2, 1)",
]


def shape(spans):
    """A trace tree reduced to comparable structure: names + fragments."""

    def node_shape(node):
        label = (node["name"], node.get("fragment"))
        return (label, sorted(node_shape(child) for child in node["children"]))

    return sorted(node_shape(root) for root in assemble_tree(spans))


def simulated_reference(built, text):
    _net, fragments, indexes = built
    cluster = SimulatedCluster.from_fragments(fragments, indexes)
    query = parse_query(text)
    plain = cluster.execute(query)
    traced = cluster.execute(query, trace=TraceContext(new_trace_id()))
    return plain, traced


class TestSimulatedClusterTracing:
    def test_untraced_response_has_no_spans(self, built):
        plain, traced = simulated_reference(built, QUERIES[0])
        assert plain.spans == ()
        assert len(traced.spans) > 0

    def test_tracing_does_not_change_the_answer(self, built):
        for text in QUERIES:
            plain, traced = simulated_reference(built, text)
            assert plain.result_nodes == traced.result_nodes

    def test_every_fragment_contributes_a_task_span(self, built):
        _plain, traced = simulated_reference(built, QUERIES[0])
        task_fragments = {
            span.fragment_id for span in traced.spans if span.name == "task"
        }
        assert task_fragments == set(range(NUM_FRAGMENTS))

    def test_stage_names_and_nesting(self, built):
        _plain, traced = simulated_reference(built, QUERIES[0])
        roots = assemble_tree(traced.spans)
        assert len(roots) == 1
        assert roots[0]["name"] == "query"
        dispatches = roots[0]["children"]
        assert {d["name"] for d in dispatches} == {"dispatch"}
        assert len(dispatches) == NUM_FRAGMENTS  # one machine per fragment
        for dispatch in dispatches:
            child_names = {c["name"] for c in dispatch["children"]}
            assert child_names == {"queue-wait", "task", "serialize"}

    def test_eval_spans_carry_cache_annotations(self, built):
        _plain, traced = simulated_reference(built, QUERIES[0])
        evals = [span for span in traced.spans if span.name == "eval"]
        assert evals
        for span in evals:
            assert span.tags.get("cache") in {"hit", "miss", "skip", "off"}
            assert "settled" in span.tags
            assert span.fragment_id is not None

    def test_cache_annotations_flip_to_hits_on_repeat(self, built):
        _net, fragments, indexes = built
        cluster = SimulatedCluster.from_fragments(fragments, indexes, cache_capacity=8)
        query = parse_query(QUERIES[0])
        first = cluster.execute(query, trace=TraceContext(new_trace_id()))
        second = cluster.execute(query, trace=TraceContext(new_trace_id()))
        first_tags = {s.tags["cache"] for s in first.spans if s.name == "eval"}
        second_tags = {s.tags["cache"] for s in second.spans if s.name == "eval"}
        assert "miss" in first_tags or "skip" in first_tags
        assert second_tags <= {"hit", "skip"}

    def test_all_spans_are_closed_and_share_the_trace_id(self, built):
        _plain, traced = simulated_reference(built, QUERIES[0])
        trace_ids = {span.trace_id for span in traced.spans}
        assert len(trace_ids) == 1
        assert all(span.end is not None for span in traced.spans)


class TestProcessClusterDifferential:
    def test_matches_simulated_structure_and_answers(self, built):
        _net, fragments, indexes = built
        with ProcessCluster.start(fragments, indexes, num_machines=NUM_FRAGMENTS) as cluster:
            for text in QUERIES:
                query = parse_query(text)
                sim_plain, sim_traced = simulated_reference(built, text)
                plain = cluster.execute(query)
                traced = cluster.execute(query, trace=TraceContext(new_trace_id()))
                # answers: tracing on == tracing off == simulated
                assert plain.result_nodes == traced.result_nodes
                assert traced.result_nodes == sim_plain.result_nodes
                assert plain.spans == ()
                # structure: identical tree to the simulated cluster
                assert shape(
                    [span.to_dict() for span in traced.spans]
                ) == shape([span.to_dict() for span in sim_traced.spans])

    def test_worker_spans_carry_machine_ids(self, built):
        _net, fragments, indexes = built
        with ProcessCluster.start(fragments, indexes, num_machines=2) as cluster:
            traced = cluster.execute(
                parse_query(QUERIES[0]), trace=TraceContext(new_trace_id())
            )
        machines = {span.machine_id for span in traced.spans if span.name == "task"}
        assert machines == {0, 1}
        # queue-wait durations are measured, not modelled
        queue_waits = [span for span in traced.spans if span.name == "queue-wait"]
        assert queue_waits
        assert all("modelled" not in span.tags for span in queue_waits)


class TestPipelinedClusterDifferential:
    def test_matches_simulated_structure_and_answers(self, built):
        _net, fragments, indexes = built
        with PipelinedCluster.start(fragments, indexes, num_machines=NUM_FRAGMENTS) as cluster:
            for text in QUERIES:
                query = parse_query(text)
                sim_plain, sim_traced = simulated_reference(built, text)
                plain = cluster.execute(query)
                traced = cluster.execute(query, trace=TraceContext(new_trace_id()))
                assert plain.result_nodes == traced.result_nodes
                assert traced.result_nodes == sim_plain.result_nodes
                assert plain.spans == ()
                assert shape(
                    [span.to_dict() for span in traced.spans]
                ) == shape([span.to_dict() for span in sim_traced.spans])

    def test_concurrent_traced_queries_keep_their_spans_apart(self, built):
        _net, fragments, indexes = built
        with PipelinedCluster.start(fragments, indexes, num_machines=NUM_FRAGMENTS) as cluster:
            contexts = [TraceContext(new_trace_id()) for _ in range(3)]
            pending = [
                cluster.submit(parse_query(text), trace=context)
                for text, context in zip(QUERIES, contexts)
            ]
            responses = [p.future.result(timeout=60.0) for p in pending]
        for context, response in zip(contexts, responses):
            trace_ids = {span.trace_id for span in response.spans}
            assert trace_ids == {context.trace_id}
            roots = assemble_tree(response.spans)
            assert len(roots) == 1 and roots[0]["name"] == "query"

    def test_mixed_traced_and_untraced_in_flight(self, built):
        _net, fragments, indexes = built
        with PipelinedCluster.start(fragments, indexes, num_machines=NUM_FRAGMENTS) as cluster:
            query = parse_query(QUERIES[0])
            traced_pending = cluster.submit(query, trace=TraceContext(new_trace_id()))
            plain_pending = cluster.submit(query)
            traced = traced_pending.future.result(timeout=60.0)
            plain = plain_pending.future.result(timeout=60.0)
        assert plain.spans == ()
        assert traced.spans
        assert plain.result_nodes == traced.result_nodes


class TestHAClusterTracing:
    def test_traced_answers_and_structure(self, built):
        from repro.ha import HACluster

        _net, fragments, indexes = built
        with HACluster.start(
            fragments, indexes, num_machines=NUM_FRAGMENTS, replication_factor=2
        ) as cluster:
            for text in QUERIES:
                sim_plain, _ = simulated_reference(built, text)
                query = parse_query(text)
                plain = cluster.execute(query)
                traced = cluster.execute(query, trace=TraceContext(new_trace_id()))
                assert plain.result_nodes == traced.result_nodes
                assert traced.result_nodes == sim_plain.result_nodes
                assert plain.spans == ()
                assert plain.attempt == 0 and traced.attempt == 0
                assert all(span.end is not None for span in traced.spans)
                assert len({span.trace_id for span in traced.spans}) == 1
                roots = assemble_tree([s.to_dict() for s in traced.spans])
                assert len(roots) == 1 and roots[0]["name"] == "query"
                dispatches = roots[0]["children"]
                assert dispatches and {d["name"] for d in dispatches} == {"dispatch"}
                for dispatch in dispatches:
                    names = {c["name"] for c in dispatch["children"]}
                    assert names == {"queue-wait", "task", "serialize"}
                # every fragment computed exactly once, attempt 0 throughout
                task_fragments = [
                    span.fragment_id for span in traced.spans if span.name == "task"
                ]
                assert sorted(task_fragments) == list(range(NUM_FRAGMENTS))
                dispatch_spans = [
                    span for span in traced.spans if span.name == "dispatch"
                ]
                assert all(s.tags.get("attempt") == 0 for s in dispatch_spans)
                assert all("rerouted" not in s.tags for s in dispatch_spans)

    def test_failover_redispatch_lands_on_survivor(self, built, tmp_path):
        """Satellite: a killed worker's traced query keeps a full span tree.

        The re-dispatched spans must carry the bumped attempt number,
        sit on the *surviving* machine, and export under that machine's
        process row in the Chrome trace file.
        """
        import json
        import time

        from repro.ha import HACluster
        from repro.obs.export import write_chrome_trace

        _net, fragments, indexes = built
        victim, survivor = 0, 1
        with HACluster.start(
            fragments,
            indexes,
            num_machines=2,
            replication_factor=2,
            machine_delays={victim: 0.5},
        ) as cluster:
            sim_plain, _ = simulated_reference(built, QUERIES[0])
            context = TraceContext(new_trace_id())
            pending = cluster.submit(parse_query(QUERIES[0]), trace=context)
            time.sleep(0.15)  # far less than the victim's per-task delay
            assert cluster.kill_worker(victim)
            response = pending.future.result(timeout=60.0)

        assert response.result_nodes == sim_plain.result_nodes
        assert not response.degraded
        assert response.attempt > 0  # failover touched the query
        assert all(span.end is not None for span in response.spans)

        rerouted = [
            span
            for span in response.spans
            if span.name == "dispatch" and span.tags.get("rerouted")
        ]
        assert rerouted
        assert {span.machine_id for span in rerouted} == {survivor}
        assert all(span.tags["attempt"] == response.attempt for span in rerouted)
        # the rerouted tasks themselves ran on the survivor, one per fragment
        tasks = [span for span in response.spans if span.name == "task"]
        assert {span.machine_id for span in tasks} == {survivor}
        assert sorted(s.fragment_id for s in tasks) == list(range(NUM_FRAGMENTS))

        out = tmp_path / "failover.json"
        record = {
            "trace_id": context.trace_id,
            "spans": [span.to_dict() for span in response.spans],
        }
        count = write_chrome_trace(out, [record])
        assert count == len(response.spans)
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        rows = {
            event["pid"]: event["args"]["name"]
            for event in events
            if event.get("ph") == "M"
        }
        rerouted_events = [
            event
            for event in events
            if event.get("ph") == "X" and event["args"].get("rerouted")
        ]
        assert rerouted_events
        for event in rerouted_events:
            assert rows[event["pid"]] == f"machine {survivor}"
            assert event["args"]["attempt"] == response.attempt
