"""Tests for the synthetic road-network generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.graph import (
    GeneratorConfig,
    compute_stats,
    generate_delaunay_network,
    generate_grid_network,
    generate_road_network,
)


class TestGridGenerator:
    def test_connected(self):
        net = generate_grid_network(GeneratorConfig(num_nodes=300, seed=1))
        assert net.is_connected()

    def test_deterministic(self):
        cfg = GeneratorConfig(num_nodes=200, seed=5)
        a = generate_grid_network(cfg)
        b = generate_grid_network(cfg)
        assert list(a.edges()) == list(b.edges())

    def test_different_seeds_differ(self):
        a = generate_grid_network(GeneratorConfig(num_nodes=200, seed=1))
        b = generate_grid_network(GeneratorConfig(num_nodes=200, seed=2))
        assert list(a.edges()) != list(b.edges())

    def test_positions_present(self):
        net = generate_grid_network(GeneratorConfig(num_nodes=100, seed=0))
        assert net.has_positions

    def test_degree_is_road_like(self):
        net = generate_grid_network(GeneratorConfig(num_nodes=900, seed=3))
        stats = compute_stats(net)
        assert stats.max_degree <= 4  # lattice neighbours only
        assert 2.0 <= stats.avg_degree <= 4.0

    def test_drop_fraction_removes_edges(self):
        dense = generate_grid_network(
            GeneratorConfig(num_nodes=400, seed=7, drop_fraction=0.0)
        )
        sparse = generate_grid_network(
            GeneratorConfig(num_nodes=400, seed=7, drop_fraction=0.5)
        )
        assert sparse.num_edges < dense.num_edges
        assert sparse.is_connected()

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            generate_grid_network(GeneratorConfig(num_nodes=1))

    def test_directed_mode(self):
        net = generate_grid_network(
            GeneratorConfig(num_nodes=100, seed=2, directed=True, oneway_fraction=0.2)
        )
        assert net.directed
        assert net.is_connected()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(4, 300))
    def test_always_connected_property(self, seed, n):
        net = generate_grid_network(GeneratorConfig(num_nodes=n, seed=seed))
        assert net.is_connected()


class TestDelaunayGenerator:
    def test_connected(self):
        net = generate_delaunay_network(GeneratorConfig(kind="delaunay", num_nodes=250, seed=1))
        assert net.is_connected()

    def test_deterministic(self):
        cfg = GeneratorConfig(kind="delaunay", num_nodes=150, seed=9)
        assert list(generate_delaunay_network(cfg).edges()) == list(
            generate_delaunay_network(cfg).edges()
        )

    def test_planar_ish_density(self):
        net = generate_delaunay_network(GeneratorConfig(kind="delaunay", num_nodes=500, seed=2))
        # A planar graph has at most 3n - 6 edges.
        assert net.num_edges <= 3 * net.num_nodes - 6

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            generate_delaunay_network(GeneratorConfig(kind="delaunay", num_nodes=3))


class TestDispatch:
    def test_kind_routing(self):
        assert generate_road_network(GeneratorConfig(kind="grid", num_nodes=50, seed=0))
        assert generate_road_network(GeneratorConfig(kind="delaunay", num_nodes=50, seed=0))

    def test_unknown_kind(self):
        with pytest.raises(GraphError):
            generate_road_network(GeneratorConfig(kind="toroidal", num_nodes=50))

    def test_weights_metric_and_positive(self):
        net = generate_road_network(GeneratorConfig(kind="grid", num_nodes=200, seed=4))
        for u, v, w in net.edges():
            assert w > 0
