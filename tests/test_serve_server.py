"""End-to-end tests for the NDJSON TCP frontend."""

from __future__ import annotations

import math
import threading
from concurrent.futures import Future

import pytest

from repro.baselines import CentralizedEvaluator
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments, parse_query
from repro.dist import SimulatedCluster
from repro.partition import BfsPartitioner
from repro.serve import (
    MetricsRegistry,
    PipelinedCluster,
    ServeClient,
    ServeConfig,
    generate_expressions,
    run_loadgen,
    serve_in_thread,
)
from repro.serve.pipeline import PendingQuery

from helpers import make_random_network


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=650, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=6).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, fragments, indexes


@pytest.fixture(scope="module")
def cluster(built):
    _net, fragments, indexes = built
    with PipelinedCluster.start(fragments, indexes, num_machines=4) as cluster:
        yield cluster


@pytest.fixture()
def server(cluster):
    with serve_in_thread(cluster, ServeConfig(max_inflight=16)) as server:
        yield server


EXPRESSIONS = [
    "NEAR(w0, 2) AND NEAR(w1, 2)",
    "HAS(w2) OR NEAR(w3, 1)",
    "NEAR(w0, 5) NOT NEAR(w2, 1)",
    "WITHIN(4 OF #0) AND HAS(w0)",
    "NEAR(w1, 4)",
    "NEAR(w0, 6) AND NEAR(w1, 6) AND NEAR(w2, 6)",
]


class TestProtocol:
    def test_ping_info_and_stats(self, server):
        with ServeClient(server.host, server.port) as client:
            assert client.request({"op": "ping"})["pong"] is True
            info = client.info()
            assert info["machines"] == 4
            assert info["degraded"] is False
            stats = client.stats()
            assert stats["admission"]["limit"] == 16
            assert stats["cluster"]["machines"] == 4
            # Worker-process clusters aggregate the coverage-cache
            # counters over a control round-trip to every worker.
            assert set(stats["coverage_cache"]) == {"hits", "misses", "skipped"}
            for value in stats["coverage_cache"].values():
                assert isinstance(value, int) and value >= 0
            # No ServeConfig(cache=True): the result cache stays absent.
            assert "result_cache" not in stats

    def test_stats_surfaces_coverage_cache_counters(self, built):
        """Clusters that aggregate cache counters show up in ``stats``."""
        from repro.serve.server import DisksServer

        _net, fragments, indexes = built
        sim = SimulatedCluster.from_fragments(
            fragments, indexes, cache_capacity=8, cache_max_entry_nodes=0
        )

        class StatsOnlyCluster:
            """Just enough cluster surface for DisksServer.stats()."""

            num_machines = sim.num_machines
            degraded = False
            dead_machines: set[int] = set()
            coverage_cache_stats = staticmethod(sim.coverage_cache_stats)

        query = parse_query("NEAR(w0, 3)")
        sim.execute(query)
        sim.execute(query)
        snapshot = DisksServer(StatsOnlyCluster()).stats()
        cache = snapshot["coverage_cache"]
        # Every term evaluation consulted a cache; the size-0 guard
        # skipped every non-empty map instead of storing it.
        assert cache["hits"] + cache["misses"] == 2 * len(fragments)
        assert cache["skipped"] >= 1

    def test_query_matches_simulated_cluster(self, built, server):
        _net, fragments, indexes = built
        reference = SimulatedCluster.from_fragments(fragments, indexes)
        with ServeClient(server.host, server.port) as client:
            for i, expression in enumerate(EXPRESSIONS):
                reply = client.query(expression, request_id=i)
                assert reply["ok"], reply
                assert reply["id"] == i
                expected = reference.execute(parse_query(expression)).result_nodes
                assert set(reply["nodes"]) == set(expected)
                assert reply["timing"]["latency_ms"] > 0
                assert reply["timing"]["message_bytes"] > 0

    def test_error_replies(self, server):
        with ServeClient(server.host, server.port) as client:
            bad_json = client.request({"op": "query"})  # no 'q'
            assert bad_json["error"] == "bad-request"
            assert client.request({"op": "nope"})["error"] == "unknown-op"
            parse_reply = client.query("NEAR(")
            assert parse_reply["error"] == "parse"
            client.send({"raw": True})
            client._sock.sendall(b"this is not json\n")
            replies = [client.read_reply(), client.read_reply()]
            assert any(r.get("error") == "bad-json" for r in replies)

    def test_radius_guard(self, cluster):
        config = ServeConfig(max_inflight=4, max_radius=3.0)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                ok = client.query("NEAR(w0, 2)")
                assert ok["ok"], ok
                rejected = client.query("NEAR(w0, 50)")
                assert rejected["error"] == "radius"


class TestConcurrency:
    def test_pipelined_burst_sustains_concurrent_inflight(self, built, server):
        """≥ 4 queries concurrently in flight, all answered correctly."""
        _net, fragments, indexes = built
        reference = SimulatedCluster.from_fragments(fragments, indexes)
        burst = 12
        with ServeClient(server.host, server.port) as client:
            for i in range(burst):
                client.send({"id": i, "q": EXPRESSIONS[i % len(EXPRESSIONS)]})
            replies = {reply["id"]: reply for reply in (client.read_reply() for _ in range(burst))}
            assert set(replies) == set(range(burst))
            for i, reply in replies.items():
                assert reply["ok"], reply
                expected = reference.execute(
                    parse_query(EXPRESSIONS[i % len(EXPRESSIONS)])
                ).result_nodes
                assert set(reply["nodes"]) == set(expected)
            stats = client.stats()
        assert stats["gauges"]["inflight"]["peak"] >= 4
        histogram = stats["histograms"]["latency_seconds"]
        assert histogram["count"] >= burst
        assert histogram["p50_ms"] > 0
        assert histogram["p99_ms"] >= histogram["p50_ms"]
        assert sum(float(s) for s in stats["busy_seconds"].values()) > 0

    def test_many_connections_in_parallel(self, built, server):
        _net, fragments, indexes = built
        reference = SimulatedCluster.from_fragments(fragments, indexes)
        failures: list[str] = []

        def _drive(expression: str) -> None:
            expected = reference.execute(parse_query(expression)).result_nodes
            try:
                with ServeClient(server.host, server.port) as client:
                    for _ in range(4):
                        reply = client.query(expression)
                        if not reply.get("ok") or set(reply["nodes"]) != set(expected):
                            failures.append(f"{expression}: {reply}")
            except Exception as error:  # pragma: no cover - surfaced via assert
                failures.append(f"{expression}: {error}")

        threads = [
            threading.Thread(target=_drive, args=(expression,))
            for expression in EXPRESSIONS
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures


class TestAdmissionControl:
    def test_load_shedding_past_high_water_mark(self, cluster):
        metrics = MetricsRegistry()
        with serve_in_thread(cluster, ServeConfig(max_inflight=1), metrics) as server:
            burst = 24
            with ServeClient(server.host, server.port) as client:
                for i in range(burst):
                    client.send({"id": i, "q": "NEAR(w0, 5) AND NEAR(w1, 5)"})
                replies = [client.read_reply() for _ in range(burst)]
            ok = [r for r in replies if r.get("ok")]
            shed = [r for r in replies if r.get("error") == "overloaded"]
            assert len(ok) >= 1
            assert len(shed) >= 1
            assert len(ok) + len(shed) == burst
            assert metrics.counter("shed") == len(shed)
            assert metrics.counter("completed") == len(ok)

    def test_shed_replies_are_immediate_and_tagged(self, cluster):
        with serve_in_thread(cluster, ServeConfig(max_inflight=1)) as server:
            with ServeClient(server.host, server.port) as client:
                for i in range(8):
                    client.send({"id": i, "q": "NEAR(w0, 5)"})
                replies = {r["id"]: r for r in (client.read_reply() for _ in range(8))}
                # Every request got an explicit reply with its own id.
                assert set(replies) == set(range(8))


class _StuckCluster:
    """A cluster whose queries never complete — exercises the timeout path."""

    num_machines = 1
    degraded = False
    dead_machines = frozenset()

    def __init__(self) -> None:
        self.forgotten: list[int] = []

    def submit(self, _query) -> PendingQuery:
        return PendingQuery(request_id=7, future=Future())

    def forget(self, request_id: int) -> None:
        self.forgotten.append(request_id)


class TestTimeouts:
    def test_query_timeout_reply_and_forget(self):
        stuck = _StuckCluster()
        config = ServeConfig(query_timeout_seconds=0.2)
        with serve_in_thread(stuck, config) as server:
            with ServeClient(server.host, server.port) as client:
                reply = client.query("HAS(w0)")
        assert reply["error"] == "timeout"
        assert stuck.forgotten == [7]


class TestLoadGenerator:
    def test_closed_loop_run_against_live_server(self, built, server):
        net, _fragments, _indexes = built
        expressions = generate_expressions(
            net, count=20, radius=4.0, num_keywords=2, seed=5
        )
        report = run_loadgen(
            server.host, server.port, expressions, num_clients=4
        )
        assert report.sent == 20
        assert report.ok == 20
        assert report.shed == 0
        assert report.errors == 0
        assert report.throughput_qps > 0
        assert 0 < report.percentile(0.5) <= report.percentile(0.99)
        assert report.p50_ms <= report.p95_ms <= report.p99_ms


class TestDegradedServing:
    def test_worker_death_keeps_the_server_answering(self, built):
        """A fresh cluster (not the shared fixture) loses one worker."""
        net, fragments, indexes = built
        oracle = CentralizedEvaluator(net)
        cluster = PipelinedCluster.start(fragments, indexes, num_machines=4)
        try:
            with serve_in_thread(cluster, ServeConfig(max_inflight=8)) as server:
                with ServeClient(server.host, server.port) as client:
                    healthy = client.query("NEAR(w0, 3)")
                    assert healthy["ok"] and not healthy["degraded"]
                    cluster._processes[1].kill()
                    for _ in range(100):
                        if cluster.degraded:
                            break
                        threading.Event().wait(0.05)
                    reply = client.query("NEAR(w0, 3)")
                    assert reply["ok"], reply
                    assert reply["degraded"] is True
                    expected = oracle.results(parse_query("NEAR(w0, 3)"))
                    assert set(reply["nodes"]) <= set(expected)
                    stats = client.stats()
                    assert stats["cluster"]["degraded"] is True
                    assert stats["cluster"]["dead_machines"] == [1]
        finally:
            cluster.shutdown()
