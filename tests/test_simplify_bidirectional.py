"""Tests for network simplification, bidirectional search, and count queries."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import DisksEngine, EngineConfig, sgkq
from repro.core.dfunction import SetOp
from repro.core.queries import CoverageTerm, KeywordSource, QClassQuery
from repro.exceptions import GraphError
from repro.graph import (
    GeneratorConfig,
    RoadNetworkBuilder,
    generate_road_network,
    simplify_network,
)
from repro.partition import BfsPartitioner
from repro.search import bidirectional_distance, distance_between

from helpers import make_random_network, oracle_distances


class TestSimplify:
    def build_chain(self):
        """objects A - j1 - j2 - j3 - B, plus a spur."""
        b = RoadNetworkBuilder()
        a = b.add_object({"start"})
        j1, j2, j3 = b.add_junction(), b.add_junction(), b.add_junction()
        end = b.add_object({"end"})
        spur = b.add_junction()
        b.add_edge(a, j1, 1.0)
        b.add_edge(j1, j2, 2.0)
        b.add_edge(j2, j3, 3.0)
        b.add_edge(j3, end, 4.0)
        b.add_edge(j2, spur, 5.0)  # j2 has degree 3: kept
        return b.build(), (a, j1, j2, j3, end, spur)

    def test_contracts_chain_nodes(self):
        net, (a, j1, j2, j3, end, spur) = self.build_chain()
        simplified = simplify_network(net)
        # j1 and j3 are pure shape nodes; j2 (degree 3) and spur
        # (degree 1) survive, as do both objects.
        assert simplified.removed_count == 2
        assert set(simplified.node_mapping) == {a, j2, end, spur}

    def test_weights_summed(self):
        net, (a, _j1, j2, _j3, end, _spur) = self.build_chain()
        simplified = simplify_network(net)
        new = simplified.network
        assert new.edge_weight(simplified.new_id(a), simplified.new_id(j2)) == 3.0
        assert new.edge_weight(simplified.new_id(j2), simplified.new_id(end)) == 7.0

    def test_protected_nodes_survive(self):
        net, (_a, j1, _j2, _j3, _end, _spur) = self.build_chain()
        simplified = simplify_network(net, protected=frozenset({j1}))
        assert j1 in simplified.node_mapping

    def test_objects_never_contracted(self):
        net = make_random_network(seed=4, num_junctions=25, num_objects=10)
        simplified = simplify_network(net)
        for old in net.object_nodes():
            assert old in simplified.node_mapping

    def test_directed_rejected(self):
        net = make_random_network(seed=5, directed=True)
        with pytest.raises(GraphError):
            simplify_network(net)

    def test_parallel_edge_keeps_minimum(self):
        b = RoadNetworkBuilder()
        a, v, c = b.add_object({"x"}), b.add_junction(), b.add_object({"y"})
        b.add_edge(a, v, 1.0)
        b.add_edge(v, c, 1.0)
        b.add_edge(a, c, 5.0)  # direct but longer
        net = b.build()
        simplified = simplify_network(net)
        assert simplified.removed_count == 1
        na, nc = simplified.new_id(a), simplified.new_id(c)
        assert simplified.network.edge_weight(na, nc) == 2.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_distances_between_retained_nodes_preserved(self, seed):
        net = make_random_network(
            seed=seed, num_junctions=20, num_objects=6, extra_edge_prob=0.05
        )
        simplified = simplify_network(net)
        kept = sorted(simplified.node_mapping)
        sample = kept[:: max(1, len(kept) // 5)][:5]
        for old_source in sample:
            oracle = oracle_distances(net, [old_source])
            new_dists = oracle_distances(
                simplified.network, [simplified.new_id(old_source)]
            )
            for old_target in kept:
                expected = oracle.get(old_target, math.inf)
                actual = new_dists.get(simplified.new_id(old_target), math.inf)
                assert actual == pytest.approx(expected)

    def test_grid_shrinks_substantially(self):
        net = generate_road_network(
            GeneratorConfig(kind="grid", num_nodes=400, seed=1, drop_fraction=0.4)
        )
        simplified = simplify_network(net)
        assert simplified.removed_count > 0
        assert simplified.network.num_nodes + simplified.removed_count == net.num_nodes


class TestBidirectional:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1500), pair_seed=st.integers(0, 99))
    def test_matches_unidirectional(self, seed, pair_seed):
        net = make_random_network(seed=seed, num_junctions=20, num_objects=8)
        rng = random.Random(pair_seed)
        s = rng.randrange(net.num_nodes)
        t = rng.randrange(net.num_nodes)
        expected = distance_between(net.neighbors, s, t)
        assert bidirectional_distance(net, s, t) == pytest.approx(expected)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1500))
    def test_directed_matches(self, seed):
        net = make_random_network(seed=seed, num_junctions=15, num_objects=6, directed=True)
        rng = random.Random(seed)
        s, t = rng.randrange(net.num_nodes), rng.randrange(net.num_nodes)
        expected = distance_between(net.neighbors, s, t)
        actual = bidirectional_distance(net, s, t)
        if math.isinf(expected):
            assert math.isinf(actual)
        else:
            assert actual == pytest.approx(expected)

    def test_same_node(self):
        net = make_random_network(seed=1)
        assert bidirectional_distance(net, 3, 3) == 0.0

    def test_bound_respected(self):
        net = make_random_network(seed=2)
        s, t = 0, net.num_nodes - 1
        true = bidirectional_distance(net, s, t)
        assert math.isinf(bidirectional_distance(net, s, t, bound=true / 2))


class TestCountQueries:
    @pytest.fixture(scope="class")
    def engine(self):
        net = make_random_network(seed=700, num_junctions=30, num_objects=15, vocabulary=5)
        return DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=4,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=BfsPartitioner(seed=7),
            ),
        )

    def test_count_matches_results(self, engine):
        for radius in (1.0, 3.0, 6.0):
            query = sgkq(["w0", "w1"], radius)
            assert engine.count(query) == len(engine.results(query))

    def test_count_with_operators(self, engine):
        terms = (
            CoverageTerm(KeywordSource("w0"), 4.0),
            CoverageTerm(KeywordSource("w1"), 2.0),
        )
        query = QClassQuery.from_chain(terms, [SetOp.SUBTRACT])
        assert engine.count(query) == len(engine.results(query))

    def test_count_empty(self, engine):
        query = sgkq(["w0", "w1", "w2", "w3"], 0.0)
        assert engine.count(query) == len(engine.results(query))
