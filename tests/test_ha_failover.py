"""Failover exactness under interleaved queries, epoch applies, and kills.

Two layers of assurance:

* a hypothesis-driven interleaving: arbitrary sequences of queries,
  committed epoch applies, and replica kills, with every query answer
  checked bit-identically against a centralized oracle at the epoch the
  query was issued;
* a deterministic race: queries piling into the pipes while an epoch
  swap and a worker kill land concurrently — every observed answer must
  be exactly the pre-swap or the post-swap result, never a blend
  (a blend is precisely what a half-applied epoch or a mixed-epoch
  failover re-dispatch would produce).
"""

from __future__ import annotations

import math
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import sgkq
from repro.baselines import CentralizedEvaluator
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.exceptions import ClusterError
from repro.ha import HACluster
from repro.live import AddKeyword, EpochManager, RemoveKeyword
from repro.partition import BfsPartitioner
from repro.workloads import UpdateGenConfig, UpdateStreamGenerator

from helpers import make_random_network

# Machines that may be killed while every fragment keeps a live replica
# under chained declustering with m=4, R=2 (kill set {1, 3} leaves
# machines 0 and 2, and every fragment touches an even machine).
SAFE_KILLS = (1, 3)


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=650, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=6).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, partition, fragments, indexes


def probe_queries(network):
    keywords = sorted(network.all_keywords())
    return [
        sgkq(keywords[:2], 1.5),
        sgkq(keywords[:2], 4.0),
        sgkq(keywords[2:3], 2.5),
    ]


def wait_until_dead(cluster, machine_id, timeout_seconds=10.0):
    deadline = time.time() + timeout_seconds
    while machine_id not in cluster.dead_machines:
        if time.time() > deadline:  # pragma: no cover - diagnostic
            raise AssertionError(f"worker {machine_id} death was never detected")
        time.sleep(0.01)


class TestInterleavedFailover:
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        actions=st.lists(
            st.sampled_from(["query", "apply", "kill"]), min_size=4, max_size=9
        ),
        ops_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_any_interleaving_stays_exact(self, built, actions, ops_seed):
        net, partition, fragments, indexes = built
        manager = EpochManager(
            network=net,
            partition=partition,
            fragments=list(fragments),
            indexes=list(indexes),
        )
        generator = UpdateStreamGenerator(net, UpdateGenConfig(seed=ops_seed))
        oracle = CentralizedEvaluator(manager.state.network)
        kills = iter(SAFE_KILLS)
        with HACluster.start(
            fragments, indexes, num_machines=4, replication_factor=2
        ) as cluster:
            for action in actions:
                if action == "query":
                    for query in probe_queries(manager.state.network):
                        assert (
                            cluster.execute(query).result_nodes
                            == oracle.results(query)
                        )
                elif action == "apply":
                    swap = manager.apply(generator.ops(6))
                    delta = manager.state.delta_from(swap.changed_fragments)
                    cluster.apply_updates(swap.epoch, list(delta.values()))
                    oracle = CentralizedEvaluator(manager.state.network)
                else:  # kill
                    machine = next(kills, None)
                    if machine is None or machine in cluster.dead_machines:
                        continue
                    cluster.kill_worker(machine)
                    wait_until_dead(cluster, machine)
            assert not cluster.degraded
            for query in probe_queries(manager.state.network):
                assert cluster.execute(query).result_nodes == oracle.results(query)


class TestConcurrentSwapAndKill:
    @pytest.mark.parametrize("use_shm", [False, True])
    def test_no_torn_epoch_across_failover(self, built, use_shm):
        """Queries racing a swap AND a kill see all-old or all-new.

        The update flips every carrier of one keyword, so the old and
        new answer sets are disjoint: a mixed-epoch merge (some
        fragments answering at epoch 0, others at epoch 1 — e.g. a
        failover re-dispatch landing on a replica that already swapped)
        would surface as a blended, never-valid set.
        """
        net, partition, fragments, indexes = built
        keyword = "w0"
        carriers = sorted(n for n in net.object_nodes() if keyword in net.keywords(n))
        others = sorted(n for n in net.object_nodes() if keyword not in net.keywords(n))
        assert carriers and len(others) >= 2
        flipped = others[:4]
        ops = [RemoveKeyword(n, keyword) for n in carriers] + [
            AddKeyword(n, keyword) for n in flipped
        ]
        manager = EpochManager(
            network=net,
            partition=partition,
            fragments=list(fragments),
            indexes=list(indexes),
        )
        query = sgkq([keyword], 0.01)
        old_answer = frozenset(carriers)
        new_answer = frozenset(flipped)

        observed: list[frozenset[int]] = []
        failures: list[str] = []
        stop = threading.Event()
        with HACluster.start(
            fragments,
            indexes,
            num_machines=4,
            replication_factor=2,
            use_shm=use_shm,
        ) as cluster:
            assert cluster.execute(query).result_nodes == old_answer

            def _probe() -> None:
                while not stop.is_set():
                    try:
                        observed.append(
                            frozenset(
                                cluster.execute(query, timeout_seconds=30).result_nodes
                            )
                        )
                    except ClusterError as error:  # pragma: no cover
                        failures.append(str(error))
                        return

            threads = [threading.Thread(target=_probe) for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let queries pile into the pipes
            cluster.kill_worker(1)
            swap = manager.apply(ops)
            delta = manager.state.delta_from(swap.changed_fragments)
            cluster.apply_updates(swap.epoch, list(delta.values()))
            post = frozenset(cluster.execute(query).result_nodes)
            time.sleep(0.05)
            stop.set()
            for thread in threads:
                thread.join()
            stats = cluster.ha_stats()

        assert not failures, failures
        assert post == new_answer
        assert stats["dead_machines"] == [1]
        torn = [o for o in observed if o not in (old_answer, new_answer)]
        assert not torn, f"torn answers observed: {torn[:3]}"
        # After the swap the steady state is the new answer.
        assert observed[-1] == new_answer
