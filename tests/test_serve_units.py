"""Unit tests for the serving-layer substrate: metrics, admission,
protocol round-trips, and the CLI wiring (including ``--version``)."""

from __future__ import annotations

import pytest

from repro import __version__, rkq, sgkq
from repro.cli import build_parser, main
from repro.core import parse_query
from repro.exceptions import ClusterError, DisksError
from repro.serve import (
    AdmissionController,
    LatencyHistogram,
    MetricsRegistry,
    decode_line,
    encode_line,
    render_query,
)
from repro.serve.protocol import query_semantics_key

from helpers import make_random_network


class TestLatencyHistogram:
    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.percentile(0.5) == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean_ms"] == 0.0

    def test_percentiles_are_ordered(self):
        histogram = LatencyHistogram()
        for i in range(1, 101):
            histogram.observe(i / 1000.0)
        assert histogram.count == 100
        p50 = histogram.percentile(0.50)
        p95 = histogram.percentile(0.95)
        p99 = histogram.percentile(0.99)
        assert 0 < p50 <= p95 <= p99 <= 0.1
        assert p50 == pytest.approx(0.050)
        assert p95 == pytest.approx(0.095)

    def test_snapshot_totals_are_exact(self):
        histogram = LatencyHistogram()
        for seconds in (0.010, 0.020, 0.030):
            histogram.observe(seconds)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["mean_ms"] == pytest.approx(20.0)
        assert snapshot["max_ms"] == pytest.approx(30.0)

    def test_window_is_bounded_but_totals_are_not(self):
        histogram = LatencyHistogram(capacity=4)
        for _ in range(10):
            histogram.observe(0.001)
        histogram.observe(1.0)  # lands in the window, becomes the max
        assert histogram.count == 11
        assert histogram.snapshot()["max_ms"] == pytest.approx(1000.0)
        assert len(histogram._window) == 4

    def test_validation(self):
        with pytest.raises(DisksError):
            LatencyHistogram(capacity=0)
        with pytest.raises(DisksError):
            LatencyHistogram().percentile(1.5)


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        assert metrics.counter("received") == 0
        metrics.increment("received")
        metrics.increment("received", by=4)
        assert metrics.counter("received") == 5

    def test_gauges_track_peak(self):
        metrics = MetricsRegistry()
        metrics.observe_gauge("inflight", 3)
        metrics.observe_gauge("inflight", 7)
        metrics.observe_gauge("inflight", 2)
        gauge = metrics.gauge("inflight")
        assert gauge["current"] == 2
        assert gauge["peak"] == 7
        assert metrics.gauge("unknown") == {"current": 0.0, "peak": 0.0}

    def test_histograms_and_busy_time(self):
        metrics = MetricsRegistry()
        metrics.observe("latency_seconds", 0.005)
        metrics.observe("latency_seconds", 0.015)
        metrics.add_busy(0, 0.25)
        metrics.add_busy(1, 0.50)
        metrics.add_busy(0, 0.25)
        assert metrics.histogram("latency_seconds").count == 2
        snapshot = metrics.snapshot()
        assert snapshot["histograms"]["latency_seconds"]["count"] == 2
        assert snapshot["busy_seconds"] == {"0": 0.5, "1": 0.5}
        assert set(snapshot) == {"counters", "gauges", "histograms", "busy_seconds"}


class TestAdmissionController:
    def test_admits_to_the_limit_then_sheds(self):
        admission = AdmissionController(limit=2)
        assert admission.try_acquire()
        assert admission.try_acquire()
        assert not admission.try_acquire()  # shed
        assert admission.depth == 2
        admission.release()
        assert admission.try_acquire()

    def test_release_without_acquire_raises(self):
        admission = AdmissionController(limit=1)
        with pytest.raises(ClusterError):
            admission.release()

    def test_validation(self):
        with pytest.raises(ClusterError):
            AdmissionController(limit=0)


class TestProtocolLines:
    def test_encode_decode_round_trip(self):
        payload = {"id": 7, "q": "NEAR(w0, 2)"}
        line = encode_line(payload)
        assert line.endswith(b"\n")
        assert decode_line(line) == payload
        assert decode_line(line.decode("utf-8")) == payload

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ValueError):
            decode_line(b"[1, 2, 3]\n")
        with pytest.raises(ValueError):
            decode_line(b"not json at all\n")


class TestRenderQuery:
    """render_query output must parse back to the same semantics."""

    def _round_trips(self, query) -> None:
        text = render_query(query)
        reparsed = parse_query(text)
        assert query_semantics_key(reparsed) == query_semantics_key(query)

    def test_sgkq(self):
        self._round_trips(sgkq(["w0", "w1"], 2.5))

    def test_rkq(self):
        self._round_trips(rkq(3, ["w0", "w1"], 4.0))

    def test_parsed_expressions(self):
        for text in (
            "NEAR(w0, 2) AND NEAR(w1, 2)",
            "HAS(w2) OR NEAR(w3, 1)",
            "NEAR(w0, 5) NOT NEAR(w2, 1)",
            "WITHIN(4 OF #0) AND HAS(w0)",
            "(NEAR(a, 1) OR NEAR(b, 2)) AND (HAS(c) NOT NEAR(d, 3.5))",
        ):
            self._round_trips(parse_query(text))

    def test_keywords_needing_quotes(self):
        self._round_trips(sgkq(["two words", 'has-"quote"', "AND"], 1.0))

    def test_tiny_radius_has_no_exponent(self):
        text = render_query(sgkq(["w0"], 0.0000125))
        number = text.split(",")[1].strip(" )")
        assert "e" not in number and "E" not in number
        self._round_trips(parse_query(text))

    def test_generated_queries_round_trip(self):
        net = make_random_network(seed=11, num_junctions=20, num_objects=10, vocabulary=4)
        from repro.workloads.querygen import QueryGenConfig, QueryGenerator

        generator = QueryGenerator(net, QueryGenConfig(seed=9))
        for _ in range(10):
            self._round_trips(generator.sgkq(2, 3.0))
            self._round_trips(generator.rkq(2, 3.0))


class TestCli:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_serve_parser_wiring(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--dir", "deploy"])
        assert args.port == 7474
        assert args.max_inflight == 16
        assert args.timeout == 30.0

    def test_loadgen_parser_wiring(self):
        parser = build_parser()
        args = parser.parse_args(["loadgen", "--queries", "50", "--clients", "2"])
        assert args.port == 7474
        assert args.queries == 50
        assert args.clients == 2
        assert args.dataset == "aus_tiny"
