"""Tests for the Dijkstra variants, with networkx as the oracle."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.search import (
    distance_between,
    reconstruct_path,
    seeded_distances,
    coverage_from_seeds,
    shortest_path_distances,
    shortest_paths_with_predecessors,
)
from repro.workloads import toy_figure1

from helpers import make_random_network, oracle_distances


def line_adj(weights):
    """A path graph 0-1-2-... with the given edge weights."""

    def adj(u):
        edges = []
        if u > 0:
            edges.append((u - 1, weights[u - 1]))
        if u < len(weights):
            edges.append((u + 1, weights[u]))
        return edges

    return adj


class TestSingleSource:
    def test_line_distances(self):
        dist = shortest_path_distances(line_adj([1.0, 2.0, 3.0]), [0])
        assert dist == {0: 0.0, 1: 1.0, 2: 3.0, 3: 6.0}

    def test_bound_truncates(self):
        dist = shortest_path_distances(line_adj([1.0, 2.0, 3.0]), [0], bound=3.0)
        assert dist == {0: 0.0, 1: 1.0, 2: 3.0}

    def test_zero_bound_keeps_seeds_only(self):
        dist = shortest_path_distances(line_adj([1.0, 1.0]), [1], bound=0.0)
        assert dist == {1: 0.0}

    def test_targets_early_exit(self):
        dist = shortest_path_distances(line_adj([1.0] * 10), [0], targets=[3])
        assert 3 in dist
        assert 10 not in dist  # stopped well before the end

    def test_distance_between(self):
        assert distance_between(line_adj([1.0, 2.0]), 0, 2) == 3.0
        assert distance_between(line_adj([1.0, 2.0]), 0, 2, bound=2.0) == math.inf

    def test_figure1_distances(self):
        net = toy_figure1()
        dist = shortest_path_distances(net.neighbors, [0])  # from A (school)
        assert dist == {0: 0.0, 4: 2.0, 1: 3.0, 3: 4.0, 2: 7.0}


class TestMultiSourceAndSeeds:
    def test_multi_source_takes_minimum(self):
        dist = shortest_path_distances(line_adj([1.0, 1.0, 1.0, 1.0]), [0, 4])
        assert dist[2] == 2.0
        assert dist[1] == 1.0
        assert dist[3] == 1.0

    def test_weighted_seeds_act_as_virtual_source(self):
        dist = shortest_path_distances(line_adj([1.0, 1.0]), {0: 5.0, 2: 0.0})
        assert dist == {2: 0.0, 1: 1.0, 0: 2.0}

    def test_weighted_seed_ignored_if_beyond_bound(self):
        dist = shortest_path_distances(line_adj([1.0]), {0: 10.0, 1: 0.0}, bound=0.5)
        assert dist == {1: 0.0}

    def test_duplicate_seed_takes_minimum(self):
        dist = shortest_path_distances(line_adj([1.0]), {0: 3.0})
        assert dist[0] == 3.0

    def test_seeded_distances_merges_zero_and_weighted(self):
        dist = seeded_distances(line_adj([1.0, 1.0]), zero_seeds=[0], weighted_seeds={2: 0.5})
        assert dist == {0: 0.0, 2: 0.5, 1: 1.0}

    def test_coverage_from_seeds(self):
        cov = coverage_from_seeds(line_adj([1.0, 1.0, 1.0]), zero_seeds=[0], radius=2.0)
        assert cov == {0, 1, 2}

    def test_empty_seeds(self):
        assert shortest_path_distances(line_adj([1.0]), []) == {}


class TestPredecessors:
    def test_path_reconstruction(self):
        run = shortest_paths_with_predecessors(line_adj([1.0, 1.0, 1.0]), [0])
        assert reconstruct_path(run, 3) == [0, 1, 2, 3]

    def test_seed_has_no_predecessor(self):
        run = shortest_paths_with_predecessors(line_adj([1.0]), [0])
        assert run.predecessors[0] == -1
        assert reconstruct_path(run, 0) == [0]

    def test_unreached_target_raises(self):
        run = shortest_paths_with_predecessors(line_adj([1.0, 5.0]), [0], bound=1.0)
        with pytest.raises(KeyError):
            reconstruct_path(run, 2)

    def test_settled_order_is_nondecreasing(self):
        net = make_random_network(seed=8)
        run = shortest_paths_with_predecessors(net.neighbors, [0])
        dists = [run.distances[u] for u in run.settled_order]
        assert dists == sorted(dists)

    def test_tree_edges_are_real_edges(self):
        net = make_random_network(seed=9)
        run = shortest_paths_with_predecessors(net.neighbors, [0])
        for node, pred in run.predecessors.items():
            if pred != -1:
                assert net.has_edge(pred, node)
                assert run.distances[node] == pytest.approx(
                    run.distances[pred] + net.edge_weight(pred, node)
                )


class TestAgainstOracle:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2000), source=st.integers(0, 29))
    def test_matches_networkx(self, seed, source):
        net = make_random_network(seed=seed, num_junctions=20, num_objects=10)
        expected = oracle_distances(net, [source])
        actual = shortest_path_distances(net.neighbors, [source])
        assert set(actual) == set(expected)
        for node, dist in expected.items():
            assert actual[node] == pytest.approx(dist)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2000),
        bound=st.floats(min_value=0.5, max_value=8.0),
    )
    def test_bounded_matches_networkx(self, seed, bound):
        net = make_random_network(seed=seed, num_junctions=15, num_objects=5)
        expected = oracle_distances(net, [0], bound=bound)
        actual = shortest_path_distances(net.neighbors, [0], bound=bound)
        assert set(actual) == set(expected)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_directed_matches_networkx(self, seed):
        net = make_random_network(seed=seed, num_junctions=15, num_objects=5, directed=True)
        expected = oracle_distances(net, [0])
        actual = shortest_path_distances(net.neighbors, [0])
        assert set(actual) == set(expected)
        for node in expected:
            assert actual[node] == pytest.approx(expected[node])
