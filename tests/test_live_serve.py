"""End-to-end live updates through the serving layer.

The acceptance scenario for `repro.live`: a client streams 100+ mixed
updates through the NDJSON frontend into a running process-backed
:class:`PipelinedCluster` while queries keep flowing, and afterwards the
served answers are bit-identical to a from-scratch rebuild of the index
on the final network.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments, parse_query
from repro.dist import SimulatedCluster
from repro.live import AddKeyword, EpochManager
from repro.partition import BfsPartitioner
from repro.serve import (
    MetricsRegistry,
    PipelinedCluster,
    ServeClient,
    ServeConfig,
    serve_in_thread,
)
from repro.workloads import UpdateGenConfig, UpdateStreamGenerator

from helpers import make_random_network

EXPRESSIONS = [
    "NEAR(w0, 2) AND NEAR(w1, 2)",
    "HAS(w2) OR NEAR(w3, 1)",
    "NEAR(w0, 5) NOT NEAR(w2, 1)",
    "NEAR(w1, 4)",
    "NEAR(w0, 6) AND NEAR(w1, 6)",
]


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=650, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=6).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, partition, fragments, indexes


def live_deployment(built):
    """(cluster, manager) with manager swaps wired into the cluster."""
    net, partition, fragments, indexes = built
    cluster = PipelinedCluster.start(fragments, indexes, num_machines=4)
    manager = EpochManager(
        network=net,
        partition=partition,
        fragments=list(fragments),
        indexes=list(indexes),
    )
    manager.subscribe(
        lambda state, delta: cluster.apply_updates(state.epoch, list(delta.values()))
    )
    return cluster, manager


class TestLiveServing:
    def test_acceptance_stream_of_updates_with_concurrent_queries(self, built):
        """≥100 mixed ops through the wire; queries answered throughout;
        final answers bit-identical to a from-scratch rebuild."""
        net, _partition, _fragments, _indexes = built
        cluster, manager = live_deployment(built)
        metrics = MetricsRegistry()
        num_batches, batch_size = 12, 10  # 120 ops ≥ 100
        batches = UpdateStreamGenerator(net, UpdateGenConfig(seed=650)).batches(
            num_batches, batch_size
        )
        query_replies: list[dict] = []
        query_failures: list[str] = []
        stop = threading.Event()
        try:
            with serve_in_thread(
                cluster, ServeConfig(max_inflight=16), metrics, updater=manager
            ) as server:

                def _query_loop() -> None:
                    try:
                        with ServeClient(server.host, server.port) as client:
                            i = 0
                            while not stop.is_set():
                                reply = client.query(EXPRESSIONS[i % len(EXPRESSIONS)])
                                query_replies.append(reply)
                                i += 1
                    except Exception as error:  # pragma: no cover
                        query_failures.append(str(error))

                prober = threading.Thread(target=_query_loop)
                prober.start()

                with ServeClient(server.host, server.port) as client:
                    assert client.epoch() == 0
                    for i, batch in enumerate(batches, start=1):
                        reply = client.update(batch, request_id=f"u{i}")
                        assert reply["ok"], reply
                        assert reply["id"] == f"u{i}"
                        assert reply["epoch"] == i
                        assert reply["applied"]["num_ops"] == batch_size
                        assert reply["staleness_ms"] >= 0
                    assert client.epoch() == num_batches

                    stop.set()
                    prober.join()

                    # (3) stats reports the new epoch and per-epoch metrics.
                    stats = client.stats()
                    live = stats["live"]
                    assert live["epoch"] == num_batches
                    assert live["applied_batches"] == num_batches
                    assert live["applied_ops"] == num_batches * batch_size
                    assert len(live["recent_swaps"]) == 5
                    for swap in live["recent_swaps"]:
                        assert swap["num_ops"] == batch_size
                        assert swap["apply_seconds"] >= 0
                        assert set(swap["ops_by_kind"]) <= {
                            "add_keyword",
                            "remove_keyword",
                            "set_edge_weight",
                        }
                    assert stats["gauges"]["epoch"]["current"] == num_batches
                    assert stats["counters"]["updates"] == num_batches
                    assert stats["counters"]["update_ops"] == num_batches * batch_size
                    assert stats["histograms"]["apply_seconds"]["count"] == num_batches
                    assert stats["histograms"]["swap_seconds"]["count"] == num_batches
                    assert (
                        stats["histograms"]["staleness_seconds"]["count"] == num_batches
                    )

                    # (2) queries were answered while the swaps streamed.
                    assert not query_failures, query_failures
                    assert query_replies, "no query completed during the update stream"
                    assert all(reply["ok"] for reply in query_replies)

                    # (1) served answers are bit-identical to a from-scratch
                    # rebuild of the index on the final network.
                    final = manager.state
                    rebuilt_fragments = build_fragments(final.network, final.partition)
                    rebuilt_indexes, _ = build_all_indexes(
                        final.network,
                        rebuilt_fragments,
                        NPDBuildConfig(max_radius=math.inf),
                    )
                    reference = SimulatedCluster.from_fragments(
                        rebuilt_fragments, rebuilt_indexes
                    )
                    for expression in EXPRESSIONS:
                        reply = client.query(expression)
                        assert reply["ok"], reply
                        expected = reference.execute(
                            parse_query(expression)
                        ).result_nodes
                        assert set(reply["nodes"]) == set(expected), expression
        finally:
            stop.set()
            cluster.shutdown()

    def test_update_errors_are_typed(self, built):
        cluster, manager = live_deployment(built)
        try:
            with serve_in_thread(
                cluster, ServeConfig(max_inflight=8), updater=manager
            ) as server:
                with ServeClient(server.host, server.port) as client:
                    empty = client.request({"op": "update", "ops": []})
                    assert empty["error"] == "bad-update"
                    malformed = client.request(
                        {"op": "update", "ops": [{"op": "add_keyword", "node": 0}]}
                    )
                    assert malformed["error"] == "bad-update"
                    junction = next(
                        n
                        for n in manager.state.network.nodes()
                        if not manager.state.network.is_object(n)
                    )
                    invalid = client.update([AddKeyword(junction, "x")])
                    assert invalid["error"] == "bad-update"
                    # Nothing published: the epoch never moved.
                    assert client.epoch() == 0
        finally:
            cluster.shutdown()

    def test_binary_update_frame_applies_end_to_end(self, built):
        """An UPDATE frame through a real socket lands as an epoch swap.

        Regression test: the wire codec and ``op_from_record`` must agree
        on the record key (``op``), or binary updates decode but never
        apply.  Both UpdateOp objects and raw record dicts must work, and
        an NDJSON client on the same server must observe the new epoch.
        """
        from repro.serve import BinaryServeClient

        cluster, manager = live_deployment(built)
        try:
            with serve_in_thread(
                cluster, ServeConfig(max_inflight=8), updater=manager
            ) as server:
                target = next(
                    n
                    for n in manager.state.network.nodes()
                    if manager.state.network.is_object(n)
                )
                with BinaryServeClient(server.host, server.port) as binary:
                    before = binary.query("NEAR(w0, 4)")["nodes"]
                    ack = binary.update([AddKeyword(target, "w0")])
                    assert ack["ok"], ack
                    assert ack["epoch"] == 1
                    assert ack["applied"] == 1
                    assert ack["staleness_ms"] >= 0
                    after = binary.query("NEAR(w0, 4)")["nodes"]
                    assert target in after
                    assert set(before) <= set(after)
                    # Raw to_record dicts ride the same frame.
                    raw = binary.update(
                        [{"op": "remove_keyword", "node": target, "keyword": "w0"}]
                    )
                    assert raw["ok"] and raw["epoch"] == 2, raw
                    assert binary.query("NEAR(w0, 4)")["nodes"] == before
                with ServeClient(server.host, server.port) as ndjson:
                    assert ndjson.epoch() == 2
        finally:
            cluster.shutdown()

    def test_update_without_live_support_rejected(self, built):
        _net, _partition, fragments, indexes = built
        cluster = PipelinedCluster.start(fragments, indexes, num_machines=2)
        try:
            with serve_in_thread(cluster, ServeConfig(max_inflight=8)) as server:
                with ServeClient(server.host, server.port) as client:
                    reply = client.update([AddKeyword(0, "x")])
                    assert reply["error"] == "no-live"
                    # The epoch op still answers from the cluster itself.
                    assert client.epoch() == 0
        finally:
            cluster.shutdown()


class _GatedCluster:
    """Submit proxy that parks each computed answer at a gate.

    The relay thread lets the worker finish the query, signals
    ``answer_ready``, then holds the response until ``gate`` opens — so
    a test can land an epoch swap in the window between the cache probe
    and the answer's admission.  Everything else forwards to the real
    cluster (including the ``explain`` keyword the cache's feature
    detection looks for).
    """

    def __init__(self, real):
        self._real = real
        self.gate = threading.Event()
        self.answer_ready = threading.Event()

    def __getattr__(self, name):
        return getattr(self._real, name)

    def submit(self, query, *, trace=None, explain=False):
        from concurrent.futures import Future
        from types import SimpleNamespace

        pending = self._real.submit(query, trace=trace, explain=explain)
        relayed: Future = Future()

        def relay() -> None:
            try:
                response = pending.future.result()
            except Exception as error:
                self.gate.wait()
                relayed.set_exception(error)
                return
            self.answer_ready.set()
            self.gate.wait()
            relayed.set_result(response)

        threading.Thread(target=relay, daemon=True).start()
        return SimpleNamespace(future=relayed, request_id=pending.request_id)


class TestMidFlightUpdateCacheSafety:
    def test_update_between_probe_and_admission_never_caches_stale(self):
        """Regression for the cache's epoch recheck at admission.

        Interleaving forced here: query Q probes the cache (miss, epoch
        0) and dispatches; its pre-swap answer is computed, *then* an
        UPDATE swaps the cluster to epoch 1, and only then does Q's
        answer reach admission.  The pre-swap answer must not land in
        the cache stamped with the post-swap epoch — a follow-up query
        must recompute and see the update.
        """
        net = make_random_network(
            seed=650, num_junctions=24, num_objects=12, vocabulary=4
        )
        partition = BfsPartitioner(seed=6).partition(net, 4)
        fragments = build_fragments(net, partition)
        indexes, _ = build_all_indexes(
            net, fragments, NPDBuildConfig(max_radius=math.inf)
        )
        cluster = PipelinedCluster.start(fragments, indexes, num_machines=2)
        manager = EpochManager(
            network=net,
            partition=partition,
            fragments=list(fragments),
            indexes=list(indexes),
        )
        manager.subscribe(
            lambda state, delta: cluster.apply_updates(state.epoch, list(delta.values()))
        )
        gated = _GatedCluster(cluster)
        expression = "HAS(w0)"
        target = next(
            node
            for node in net.nodes()
            if net.is_object(node) and "w0" not in net.keywords(node)
        )
        first_reply: list[dict] = []
        try:
            with serve_in_thread(
                gated, ServeConfig(max_inflight=8, cache=True), updater=manager
            ) as server:

                def in_flight_query() -> None:
                    with ServeClient(server.host, server.port) as client:
                        first_reply.append(client.query(expression))

                prober = threading.Thread(target=in_flight_query)
                prober.start()
                assert gated.answer_ready.wait(timeout=30), "query never dispatched"
                # Pre-swap answer exists but has not been admitted: swap now.
                manager.apply([AddKeyword(target, "w0")])
                gated.gate.set()
                prober.join(timeout=30)
                assert first_reply and first_reply[0]["ok"], first_reply

                cache_stats = server.result_cache.stats()
                assert cache_stats["stale_rejects"] >= 1
                assert cache_stats["entries"] == 0
                assert cache_stats["epoch"] == 1

                # The in-flight reply was computed pre-swap (admitted
                # before the update — allowed); the *next* query must
                # recompute against the new epoch, not serve it back.
                assert target not in set(first_reply[0]["nodes"])
                with ServeClient(server.host, server.port) as client:
                    after = set(client.query(expression)["nodes"])
                state = manager.state
                reference = SimulatedCluster.from_fragments(
                    list(state.fragments), list(state.indexes)
                )
                expected = set(
                    reference.execute(parse_query(expression)).result_nodes
                )
                assert after == expected
                assert target in after
        finally:
            gated.gate.set()
            cluster.shutdown()
