"""Tests for D-functions, including the Lemma 1 distributivity property."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DFunction, SetOp
from repro.core.dfunction import DExpression, intersect, subtract, term, union
from repro.exceptions import QueryError


class TestSetOp:
    def test_apply(self):
        a, b = {1, 2, 3}, {2, 3, 4}
        assert SetOp.UNION.apply(a, b) == {1, 2, 3, 4}
        assert SetOp.INTERSECT.apply(a, b) == {2, 3}
        assert SetOp.SUBTRACT.apply(a, b) == {1}

    def test_symbols(self):
        assert SetOp.UNION.symbol == "∪"
        assert SetOp.INTERSECT.symbol == "∩"
        assert SetOp.SUBTRACT.symbol == "−"


class TestDFunctionChain:
    def test_left_associative_evaluation(self):
        # X0 − X1 ∪ X2 must parse as (X0 − X1) ∪ X2.
        f = DFunction((SetOp.SUBTRACT, SetOp.UNION))
        result = f.evaluate([{1, 2}, {2}, {3}])
        assert result == {1, 3}

    def test_paper_example4(self):
        """Example 4: F = X1 ∩ X2 over U = {A..E} evaluated directly."""
        f = DFunction((SetOp.INTERSECT,))
        x1 = {0, 1, 2, 3}  # {A, B, C, D}
        x2 = {1, 2, 3, 4}  # {B, C, D, E}
        assert f.evaluate([x1, x2]) == {1, 2, 3}

    def test_arity_checked(self):
        f = DFunction((SetOp.UNION,))
        with pytest.raises(QueryError):
            f.evaluate([{1}])
        with pytest.raises(QueryError):
            f.evaluate([{1}, {2}, {3}])

    def test_all_intersect_factory(self):
        f = DFunction.all_intersect(3)
        assert f.ops == (SetOp.INTERSECT, SetOp.INTERSECT)
        with pytest.raises(QueryError):
            DFunction.all_intersect(0)

    def test_single_term_identity(self):
        f = DFunction(())
        assert f.evaluate([{5, 6}]) == {5, 6}

    def test_chain_compiles_to_equivalent_tree(self):
        ops = (SetOp.SUBTRACT, SetOp.INTERSECT, SetOp.UNION)
        f = DFunction(ops)
        sets = [{1, 2, 3}, {2}, {1, 3, 4}, {9}]
        assert f.to_expression().evaluate(sets) == f.evaluate(sets)

    def test_str(self):
        f = DFunction((SetOp.INTERSECT, SetOp.SUBTRACT))
        assert str(f) == "X0 ∩ X1 − X2"


class TestDExpressionTree:
    def test_leaf_validation(self):
        with pytest.raises(QueryError):
            DExpression(index=-1)
        with pytest.raises(QueryError):
            DExpression(op=SetOp.UNION, left=term(0))  # missing right child

    def test_operator_sugar(self):
        expr = (term(0) & term(1)) - term(2) | term(3)
        sets = [{1, 2}, {1, 2, 3}, {2}, {7}]
        assert expr.evaluate(sets) == {1, 7}

    def test_parenthesised_tree_differs_from_chain(self):
        # X0 ∩ (X1 ∪ X2) is not expressible as a flat chain.
        expr = intersect(term(0), union(term(1), term(2)))
        sets = [{1, 2, 3}, {1}, {3}]
        assert expr.evaluate(sets) == {1, 3}
        chain = DFunction((SetOp.INTERSECT, SetOp.UNION)).evaluate(sets)
        assert chain == {1, 3} or chain != expr.evaluate(sets)  # documents the shape

    def test_arity_and_referenced_terms(self):
        expr = subtract(term(4), term(1))
        assert expr.arity() == 5
        assert expr.referenced_terms() == {1, 4}

    def test_missing_coverage_raises(self):
        with pytest.raises(QueryError):
            term(3).evaluate([set()])

    def test_str_rendering(self):
        expr = (term(0) | term(1)) & term(2)
        assert str(expr) == "((X0 ∪ X1) ∩ X2)"


def random_expression(rng: random.Random, arity: int, depth: int = 0) -> DExpression:
    if depth >= 3 or rng.random() < 0.35:
        return term(rng.randrange(arity))
    op = rng.choice([SetOp.UNION, SetOp.INTERSECT, SetOp.SUBTRACT])
    return DExpression(
        op=op,
        left=random_expression(rng, arity, depth + 1),
        right=random_expression(rng, arity, depth + 1),
    )


class TestLemma1Distributivity:
    """F(X₁,…,Xₜ) == ⋃ᵢ F(X₁ ∩ Uᵢ, …, Xₜ ∩ Uᵢ) for node-disjoint Uᵢ."""

    @settings(max_examples=80, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        universe=st.integers(4, 40),
        num_fragments=st.integers(1, 6),
        arity=st.integers(1, 6),
    )
    def test_chain_distributes(self, seed, universe, num_fragments, arity):
        rng = random.Random(seed)
        ops = tuple(
            rng.choice([SetOp.UNION, SetOp.INTERSECT, SetOp.SUBTRACT])
            for _ in range(arity - 1)
        )
        f = DFunction(ops)
        sets = [
            {x for x in range(universe) if rng.random() < 0.4} for _ in range(arity)
        ]
        assignment = [rng.randrange(num_fragments) for _ in range(universe)]
        fragments = [
            {x for x in range(universe) if assignment[x] == i}
            for i in range(num_fragments)
        ]
        direct = f.evaluate(sets)
        distributed: set[int] = set()
        for frag in fragments:
            distributed |= f.evaluate([s & frag for s in sets])
        assert distributed == direct

    @settings(max_examples=80, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        universe=st.integers(4, 40),
        num_fragments=st.integers(1, 6),
        arity=st.integers(1, 5),
    )
    def test_tree_distributes(self, seed, universe, num_fragments, arity):
        """The §5.4 generalisation: arbitrary trees distribute too."""
        rng = random.Random(seed)
        expr = random_expression(rng, arity)
        sets = [
            {x for x in range(universe) if rng.random() < 0.4} for _ in range(arity)
        ]
        assignment = [rng.randrange(num_fragments) for _ in range(universe)]
        fragments = [
            {x for x in range(universe) if assignment[x] == i}
            for i in range(num_fragments)
        ]
        direct = expr.evaluate(sets)
        distributed: set[int] = set()
        for frag in fragments:
            distributed |= expr.evaluate([s & frag for s in sets])
        assert distributed == direct
