"""Differential tests: compiled FragmentKernel vs the dict reference path.

The kernel's contract is *bit-identical distance maps* — same nodes,
same float distances — on every fragment, term and graph shape.  These
tests pin it to the reference evaluator (``compiled=False``, i.e.
:func:`repro.search.dijkstra.shortest_path_distances`) over randomized
networks, directed and undirected, including tie-heavy integer weights
where many nodes sit at exactly the same distance, and the
``radius == maxR`` boundary where the ``nd <= bound`` semantics decide
the frontier.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import DisksEngine, EngineConfig, sgkq
from repro.baselines import CentralizedEvaluator
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.core.coverage import (
    CoverageStats,
    FragmentRuntime,
    batch_distance_maps,
    local_distance_map,
)
from repro.core.queries import CoverageTerm, KeywordSource, NodeSource
from repro.graph.build import RoadNetworkBuilder
from repro.partition import BfsPartitioner

from helpers import make_random_network


def make_tie_network(seed: int, directed: bool = False):
    """A connected network whose weights are all 1.0 or 2.0.

    Integer weights make shortest-path ties ubiquitous and put many
    nodes at *exactly* the query radius, which is what the boundary
    (``nd <= bound``) and tie-ordering tests need.
    """
    rng = random.Random(seed)
    total = 30
    builder = RoadNetworkBuilder(directed=directed)
    vocab = [f"w{i}" for i in range(4)]
    for node in range(total):
        pos = (rng.uniform(0, 10), rng.uniform(0, 10))
        if node % 3 == 0:
            builder.add_object([rng.choice(vocab), rng.choice(vocab)], pos)
        else:
            builder.add_junction(pos)
    order = list(range(total))
    rng.shuffle(order)
    for i in range(1, total):
        u, v = order[i], order[rng.randrange(i)]
        w = float(rng.choice((1, 2)))
        builder.add_edge(u, v, w, keep_min=True)
        if directed:
            builder.add_edge(v, u, w, keep_min=True)
    for u in range(total):
        for v in range(u + 1, total):
            if rng.random() < 0.12 and not builder.has_edge(u, v):
                builder.add_edge(u, v, float(rng.choice((1, 2))))
                if directed:
                    builder.add_edge(v, u, float(rng.choice((1, 2))))
    return builder.build()


def build_runtime_trios(net, num_fragments: int, max_radius: float, seed: int = 1):
    """(reference, bucket kernel, heap kernel) runtimes per fragment.

    The compiled kernel has two settle loops — the bounded bucket queue
    (default whenever ``radius/δ`` is small enough) and the binary-heap
    fallback.  Every differential sweep pins *both* to the reference, so
    the fallback cannot rot unexercised.
    """
    partition = BfsPartitioner(seed=seed).partition(net, num_fragments)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=max_radius))
    trios = []
    for fragment, index in zip(fragments, indexes):
        reference = FragmentRuntime(fragment, index, compiled=False)
        bucketed = FragmentRuntime(fragment, index, compiled=True)
        heap_forced = FragmentRuntime(fragment, index, compiled=True)
        heap_forced.kernel.bucket_limit = -1  # force the heap fallback
        trios.append((reference, bucketed, heap_forced))
    return trios


def assert_term_parity(reference: FragmentRuntime, compiled_variants, term):
    """One term, every evaluator: identical maps AND identical counters."""
    ref_stats = CoverageStats()
    ref_map = local_distance_map(reference, term, ref_stats)
    for compiled in compiled_variants:
        kern_stats = CoverageStats()
        kern_map = local_distance_map(compiled, term, kern_stats)
        assert kern_map == ref_map  # exact float equality, not approx
        assert kern_stats == ref_stats
    return ref_map


class TestKernelDifferential:
    """Property-style sweep: random graphs × random terms, both paths."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    @pytest.mark.parametrize("directed", [False, True])
    def test_random_networks_distance_map_parity(self, seed: int, directed: bool):
        net = make_random_network(
            seed=900 + seed,
            num_junctions=24,
            num_objects=12,
            vocabulary=5,
            directed=directed,
        )
        trios = build_runtime_trios(net, 3, max_radius=math.inf, seed=seed)
        rng = random.Random(seed)
        nodes = list(net.nodes())
        terms = [
            CoverageTerm(KeywordSource(f"w{k}"), rng.uniform(0.25, 8.0))
            for k in range(5)
        ] + [CoverageTerm(NodeSource(rng.choice(nodes)), rng.uniform(0.25, 8.0)) for _ in range(5)]
        for reference, *variants in trios:
            for term in terms:
                assert_term_parity(reference, variants, term)

    @pytest.mark.parametrize("directed", [False, True])
    def test_tie_heavy_weights_parity(self, directed: bool):
        net = make_tie_network(seed=42, directed=directed)
        trios = build_runtime_trios(net, 3, max_radius=math.inf)
        for radius in (1.0, 2.0, 3.0, 4.0, 5.0):
            for k in range(4):
                term = CoverageTerm(KeywordSource(f"w{k}"), radius)
                for reference, *variants in trios:
                    assert_term_parity(reference, variants, term)

    @pytest.mark.parametrize("directed", [False, True])
    def test_radius_equals_max_radius_boundary(self, directed: bool):
        """radius == maxR settles the same frontier in both paths.

        Integer weights guarantee nodes at *exactly* the bound, so this
        exercises the inclusive ``nd <= bound`` edge rather than passing
        vacuously.
        """
        max_radius = 4.0
        net = make_tie_network(seed=7, directed=directed)
        trios = build_runtime_trios(net, 2, max_radius=max_radius)
        saw_boundary_node = False
        for k in range(4):
            term = CoverageTerm(KeywordSource(f"w{k}"), max_radius)
            for reference, *variants in trios:
                ref_map = assert_term_parity(reference, variants, term)
                if any(d == max_radius for d in ref_map.values()):
                    saw_boundary_node = True
        assert saw_boundary_node  # the bound was actually reached

    def test_node_source_inside_and_outside_fragment(self):
        net = make_random_network(seed=913, num_junctions=24, num_objects=12, vocabulary=4)
        trios = build_runtime_trios(net, 3, max_radius=math.inf)
        nodes = sorted(net.nodes())
        for reference, *variants in trios:
            members = reference.fragment.members
            inside = next(n for n in nodes if n in members)
            outside = next(n for n in nodes if n not in members)
            for node in (inside, outside):
                for radius in (0.0, 1.5, 6.0):
                    term = CoverageTerm(NodeSource(node), radius)
                    assert_term_parity(reference, variants, term)

    def test_unknown_keyword_is_empty_on_both_paths(self):
        net = make_random_network(seed=914, num_junctions=20, num_objects=10, vocabulary=3)
        trios = build_runtime_trios(net, 2, max_radius=math.inf)
        term = CoverageTerm(KeywordSource("no-such-keyword"), 3.0)
        for reference, *variants in trios:
            assert assert_term_parity(reference, variants, term) == {}


class TestKernelMechanics:
    def _runtime(self, *, compiled: bool, seed: int = 915):
        net = make_random_network(seed=seed, num_junctions=24, num_objects=12, vocabulary=4)
        trios = build_runtime_trios(net, 2, max_radius=math.inf)
        return trios[0][1] if compiled else trios[0][0]

    def test_scratch_reuse_across_many_terms(self):
        """Hundreds of searches on one kernel stay exact (stamp hygiene)."""
        compiled = self._runtime(compiled=True)
        reference = self._runtime(compiled=False)
        rng = random.Random(0)
        terms = [
            CoverageTerm(KeywordSource(f"w{rng.randrange(4)}"), rng.uniform(0.1, 9.0))
            for _ in range(200)
        ]
        before = compiled.kernel.generation
        for term in terms:
            assert local_distance_map(compiled, term) == local_distance_map(reference, term)
        assert compiled.kernel.generation == before + len(terms)

    def test_csr_layout_is_consistent(self):
        kernel = self._runtime(compiled=True).kernel
        indptr = kernel.indptr
        assert indptr[0] == 0
        assert list(indptr) == sorted(indptr)  # monotone row offsets
        assert len(kernel.indices) == len(kernel.weights) == indptr[-1]
        assert all(0 <= v < kernel.num_nodes for v in kernel.indices)
        cells = kernel.memory_cells()
        assert cells["scratch_cells"] == 2 * kernel.num_nodes

    def test_batch_matches_per_term_and_memoises_duplicates(self):
        compiled = self._runtime(compiled=True)
        t1 = CoverageTerm(KeywordSource("w0"), 3.0)
        t2 = CoverageTerm(KeywordSource("w1"), 2.0)
        terms = [t1, t2, t1]  # duplicate first term
        before = compiled.kernel.generation
        maps = batch_distance_maps(compiled, terms)
        assert maps[0] is maps[2]  # the duplicate was memoised
        assert compiled.kernel.generation == before + 2  # only two searches ran
        fresh = self._runtime(compiled=True)
        assert maps[0] == local_distance_map(fresh, t1)
        assert maps[1] == local_distance_map(fresh, t2)

    def test_bucket_path_self_drains_and_heap_fallback_matches(self):
        """Default path uses (and drains) the bucket array; fallback agrees."""
        net = make_tie_network(seed=21)  # δ = 1.0, so buckets always apply
        reference, bucketed, _ = build_runtime_trios(net, 2, max_radius=math.inf)[0]
        kernel = bucketed.kernel
        term = CoverageTerm(KeywordSource("w0"), 5.0)
        expected = local_distance_map(reference, term)
        assert kernel.distance_map(term) == expected
        assert len(kernel._buckets) >= 6  # the bucket path actually ran
        assert all(not bucket for bucket in kernel._buckets)  # and self-drained
        kernel.bucket_limit = -1  # flip the same kernel to the heap loop
        assert kernel.distance_map(term) == expected

    def test_lazy_kernel_on_reference_runtime(self):
        reference = self._runtime(compiled=False)
        assert not reference.compiled
        term = CoverageTerm(KeywordSource("w0"), 3.0)
        # The kernel is still reachable for comparison tooling.
        assert reference.kernel.distance_map(term) == local_distance_map(reference, term)


class TestEngineParity:
    """End-to-end: compiled and reference engines answer identically."""

    def test_engine_results_match_reference_and_oracle(self):
        net = make_random_network(seed=916, num_junctions=28, num_objects=14, vocabulary=4)
        base = dict(
            num_fragments=3,
            lambda_factor=None,
            max_radius=math.inf,
            partitioner=BfsPartitioner(seed=2),
        )
        fast = DisksEngine.build(net, EngineConfig(compiled=True, **base))
        slow = DisksEngine.build(net, EngineConfig(compiled=False, **base))
        oracle = CentralizedEvaluator(net)
        for query in (
            sgkq(["w0"], 3.0),
            sgkq(["w0", "w1"], 4.0),
            sgkq(["w1", "w2", "w3"], 2.5),
        ):
            expected = oracle.results(query)
            assert fast.results(query) == expected
            assert slow.results(query) == expected
            assert fast.explain(query) == slow.explain(query)
