"""Tests for the binary codec and the IND(P)/fragment file formats."""

from __future__ import annotations

import io
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.core.npd import DLNodePolicy
from repro.exceptions import ChecksumError, CodecError, StorageError
from repro.partition import BfsPartitioner
from repro.storage import (
    RecordReader,
    RecordWriter,
    decode_record,
    encode_record,
    index_file_size,
    read_fragment_file,
    read_index_file,
    write_fragment_file,
    write_index_file,
)
from repro.storage.codec import pack_string, unpack_string

from helpers import make_random_network


class TestCodec:
    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=2000))
    def test_record_round_trip(self, payload):
        framed = encode_record(payload)
        decoded, end = decode_record(framed)
        assert decoded == payload
        assert end == len(framed)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(max_size=100), max_size=10))
    def test_stream_round_trip(self, payloads):
        buffer = io.BytesIO()
        writer = RecordWriter(buffer)
        for payload in payloads:
            writer.write(payload)
        assert writer.records_written == len(payloads)
        buffer.seek(0)
        assert list(RecordReader(buffer)) == payloads

    def test_corruption_detected(self):
        framed = bytearray(encode_record(b"hello world"))
        framed[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            decode_record(bytes(framed))

    def test_truncation_detected(self):
        framed = encode_record(b"hello world")
        with pytest.raises(CodecError):
            decode_record(framed[: len(framed) - 3])
        with pytest.raises(CodecError):
            decode_record(framed[:4])

    def test_stream_truncation_detected(self):
        framed = encode_record(b"payload")
        reader = RecordReader(io.BytesIO(framed[:-2]))
        with pytest.raises(CodecError):
            next(reader)

    @settings(max_examples=40, deadline=None)
    @given(st.text(max_size=200))
    def test_string_round_trip(self, text):
        packed = pack_string(text)
        decoded, end = unpack_string(packed, 0)
        assert decoded == text
        assert end == len(packed)

    def test_string_truncation(self):
        packed = pack_string("hello")
        with pytest.raises(CodecError):
            unpack_string(packed[:3], 0)
        with pytest.raises(CodecError):
            unpack_string(b"", 0)


@pytest.fixture(scope="module")
def built_case():
    net = make_random_network(seed=300, num_junctions=20, num_objects=10, vocabulary=4)
    partition = BfsPartitioner(seed=3).partition(net, 3)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=5.0))
    return net, fragments, indexes


class TestIndexFiles:
    def test_round_trip(self, built_case, tmp_path):
        _net, _fragments, indexes = built_case
        for index in indexes:
            path = tmp_path / f"ind{index.fragment_id}.npd"
            write_index_file(index, path)
            clone = read_index_file(path)
            assert clone.fragment_id == index.fragment_id
            assert clone.max_radius == index.max_radius
            assert clone.node_policy == index.node_policy
            assert clone.directed == index.directed
            assert clone.shortcuts == index.shortcuts
            assert clone.keyword_entries == index.keyword_entries
            assert clone.node_entries == index.node_entries

    def test_infinite_max_radius_round_trips(self, tmp_path):
        net = make_random_network(seed=301, num_junctions=12, num_objects=6)
        partition = BfsPartitioner(seed=1).partition(net, 2)
        fragments = build_fragments(net, partition)
        indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
        path = tmp_path / "inf.npd"
        write_index_file(indexes[0], path)
        assert read_index_file(path).max_radius == math.inf

    def test_predicted_size_matches_actual(self, built_case, tmp_path):
        _net, _fragments, indexes = built_case
        for index in indexes:
            path = tmp_path / f"size{index.fragment_id}.npd"
            actual = write_index_file(index, path)
            assert actual == index_file_size(index)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.npd"
        with path.open("wb") as stream:
            RecordWriter(stream).write(b"WRONGMAG" + b"\x00" * 30)
        with pytest.raises(StorageError):
            read_index_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.npd"
        path.write_bytes(b"")
        with pytest.raises(StorageError):
            read_index_file(path)

    def test_bitrot_detected(self, built_case, tmp_path):
        _net, _fragments, indexes = built_case
        path = tmp_path / "rot.npd"
        write_index_file(indexes[0], path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises((ChecksumError, StorageError, CodecError)):
            read_index_file(path)


class TestFragmentFiles:
    def test_round_trip(self, built_case, tmp_path):
        _net, fragments, _indexes = built_case
        for fragment in fragments:
            path = tmp_path / f"frag{fragment.fragment_id}.npf"
            write_fragment_file(fragment, path)
            clone = read_fragment_file(path)
            assert clone.fragment_id == fragment.fragment_id
            assert clone.members == fragment.members
            assert clone.portals == fragment.portals
            assert clone.adjacency == fragment.adjacency
            assert clone.directed == fragment.directed
            assert (
                clone.keyword_index.to_postings()
                == fragment.keyword_index.to_postings()
            )

    def test_cold_start_machine_from_files(self, built_case, tmp_path):
        """A worker restored purely from its two files answers correctly."""
        from repro.baselines import CentralizedEvaluator
        from repro.core import sgkq
        from repro.core.coverage import FragmentRuntime
        from repro.core.executor import execute_fragment_task

        net, fragments, indexes = built_case
        query = sgkq(["w0", "w1"], 4.0)
        merged: set[int] = set()
        for fragment, index in zip(fragments, indexes):
            fpath = tmp_path / f"f{fragment.fragment_id}.npf"
            ipath = tmp_path / f"i{fragment.fragment_id}.npd"
            write_fragment_file(fragment, fpath)
            write_index_file(index, ipath)
            runtime = FragmentRuntime(read_fragment_file(fpath), read_index_file(ipath))
            merged |= execute_fragment_task(runtime, query).local_result
        assert merged == CentralizedEvaluator(net).results(query)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.npf"
        with path.open("wb") as stream:
            RecordWriter(stream).write(b"WRONGMAG" + b"\x00" * 20)
        with pytest.raises(StorageError):
            read_fragment_file(path)
