"""Tests for the partitioning substrate: base types, metrics, partitioners."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import PartitionError
from repro.graph import GeneratorConfig, generate_road_network
from repro.partition import (
    BfsPartitioner,
    MultilevelPartitioner,
    Partition,
    RandomPartitioner,
    SpatialPartitioner,
    evaluate_partition,
    validate_partition,
)

from helpers import make_random_network

ALL_PARTITIONERS = [
    ("random", RandomPartitioner(seed=1)),
    ("bfs", BfsPartitioner(seed=1)),
    ("spatial", SpatialPartitioner()),
    ("multilevel", MultilevelPartitioner(seed=1)),
]


class TestPartitionType:
    def test_members_and_sizes(self):
        p = Partition.from_assignment([0, 1, 0, 1, 2])
        assert p.num_fragments == 3
        assert p.members(0) == [0, 2]
        assert p.sizes() == [2, 2, 1]
        assert p.fragment_of(4) == 2

    def test_all_members_indexed_by_fragment(self):
        p = Partition.from_assignment([1, 0, 1])
        assert p.all_members() == [[1], [0, 2]]

    def test_invalid_assignment_rejected(self):
        with pytest.raises(PartitionError):
            Partition((0, 5), num_fragments=2)
        with pytest.raises(PartitionError):
            Partition((), num_fragments=0)

    def test_members_out_of_range(self):
        p = Partition.from_assignment([0, 0])
        with pytest.raises(PartitionError):
            p.members(1)

    def test_validate_against_network(self, small_network):
        p = Partition.from_assignment([0] * small_network.num_nodes, 1)
        validate_partition(small_network, p)

    def test_validate_size_mismatch(self, small_network):
        p = Partition.from_assignment([0, 0], 1)
        with pytest.raises(PartitionError):
            validate_partition(small_network, p)

    def test_validate_empty_fragment(self, small_network):
        p = Partition.from_assignment([0] * small_network.num_nodes, 2)
        with pytest.raises(PartitionError):
            validate_partition(small_network, p)
        validate_partition(small_network, p, require_nonempty=False)


class TestMetrics:
    def test_single_fragment_has_no_cut(self, small_network):
        p = Partition.from_assignment([0] * small_network.num_nodes, 1)
        q = evaluate_partition(small_network, p)
        assert q.edge_cut == 0
        assert q.total_portals == 0
        assert q.balance == pytest.approx(1.0)

    def test_cut_and_portals_consistent(self, grid_network):
        p = BfsPartitioner(seed=3).partition(grid_network, 4)
        q = evaluate_partition(grid_network, p)
        cut_edges = [
            (u, v)
            for u, v, _w in grid_network.edges()
            if p.assignment[u] != p.assignment[v]
        ]
        assert q.edge_cut == len(cut_edges)
        expected_portals = {u for u, _v in cut_edges} | {v for _u, v in cut_edges}
        assert q.total_portals == len(expected_portals)

    def test_summary_mentions_key_numbers(self, grid_network):
        p = RandomPartitioner(seed=0).partition(grid_network, 2)
        summary = evaluate_partition(grid_network, p).summary()
        assert "k=2" in summary and "cut=" in summary


class TestPartitionerContracts:
    @pytest.mark.parametrize("name,partitioner", ALL_PARTITIONERS)
    @pytest.mark.parametrize("k", [1, 2, 3, 7])
    def test_valid_covering_partition(self, name, partitioner, k, grid_network):
        p = partitioner.partition(grid_network, k)
        assert p.num_fragments == k
        validate_partition(grid_network, p)

    @pytest.mark.parametrize("name,partitioner", ALL_PARTITIONERS)
    def test_k_greater_than_nodes_rejected(self, name, partitioner, figure1):
        with pytest.raises(PartitionError):
            partitioner.partition(figure1, 50)

    @pytest.mark.parametrize("name,partitioner", ALL_PARTITIONERS)
    def test_k_zero_rejected(self, name, partitioner, figure1):
        with pytest.raises(PartitionError):
            partitioner.partition(figure1, 0)

    @pytest.mark.parametrize(
        "name,partitioner",
        [p for p in ALL_PARTITIONERS if p[0] != "spatial"],
    )
    def test_deterministic(self, name, partitioner, grid_network):
        a = partitioner.partition(grid_network, 5)
        b = partitioner.partition(grid_network, 5)
        assert a.assignment == b.assignment

    def test_spatial_requires_positions(self):
        from repro.graph import RoadNetworkBuilder

        b = RoadNetworkBuilder()
        b.add_junction()
        b.add_junction()
        b.add_edge(0, 1, 1.0)
        with pytest.raises(PartitionError):
            SpatialPartitioner().partition(b.build(), 2)


class TestPartitionerQuality:
    def test_balance_within_tolerance(self, grid_network):
        for k in (2, 4, 8):
            p = MultilevelPartitioner(seed=2, balance_tolerance=0.1).partition(
                grid_network, k
            )
            q = evaluate_partition(grid_network, p)
            assert q.balance <= 1.2  # tolerance + projection slack

    def test_locality_aware_beats_random(self, grid_network):
        random_cut = evaluate_partition(
            grid_network, RandomPartitioner(seed=5).partition(grid_network, 8)
        ).edge_cut
        for partitioner in (
            BfsPartitioner(seed=5),
            SpatialPartitioner(),
            MultilevelPartitioner(seed=5),
        ):
            cut = evaluate_partition(
                grid_network, partitioner.partition(grid_network, 8)
            ).edge_cut
            assert cut < random_cut / 2

    def test_multilevel_improves_on_bfs_or_close(self, grid_network):
        """Refinement should land within a modest factor of region growing."""
        bfs_cut = evaluate_partition(
            grid_network, BfsPartitioner(seed=6).partition(grid_network, 6)
        ).edge_cut
        ml_cut = evaluate_partition(
            grid_network, MultilevelPartitioner(seed=6).partition(grid_network, 6)
        ).edge_cut
        assert ml_cut <= bfs_cut * 1.5

    def test_spatial_fragments_are_compact(self, grid_network):
        p = SpatialPartitioner().partition(grid_network, 4)
        q = evaluate_partition(grid_network, p)
        assert q.cut_fraction < 0.25

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), k=st.integers(1, 6))
    def test_multilevel_property_valid(self, seed, k):
        net = make_random_network(seed=seed, num_junctions=30, num_objects=10)
        p = MultilevelPartitioner(seed=seed).partition(net, k)
        validate_partition(net, p)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), k=st.integers(1, 6))
    def test_bfs_property_valid(self, seed, k):
        net = make_random_network(seed=seed, num_junctions=30, num_objects=10)
        p = BfsPartitioner(seed=seed).partition(net, k)
        validate_partition(net, p)

    def test_multilevel_handles_disconnected_graph(self):
        from repro.graph import RoadNetworkBuilder

        b = RoadNetworkBuilder()
        for _ in range(8):
            b.add_junction()
        b.add_edge(0, 1, 1.0)
        b.add_edge(1, 2, 1.0)
        b.add_edge(3, 4, 1.0)
        b.add_edge(5, 6, 1.0)
        b.add_edge(6, 7, 1.0)
        net = b.build()
        p = MultilevelPartitioner(seed=1).partition(net, 3)
        validate_partition(net, p)

    def test_bfs_handles_disconnected_graph(self):
        from repro.graph import RoadNetworkBuilder

        b = RoadNetworkBuilder()
        for _ in range(6):
            b.add_junction()
        b.add_edge(0, 1, 1.0)
        b.add_edge(2, 3, 1.0)
        b.add_edge(4, 5, 1.0)
        net = b.build()
        p = BfsPartitioner(seed=1).partition(net, 2)
        validate_partition(net, p)
