"""Integration tests: the full pipeline on preset datasets, plus the paper's
worked examples end to end through the distributed engine."""

from __future__ import annotations

import math

import pytest

from repro import DisksEngine, EngineConfig, rkq, sgkq, sgkq_extended
from repro.baselines import BSPQueryEvaluator, CentralizedEvaluator
from repro.core import DLNodePolicy
from repro.partition import MultilevelPartitioner, SpatialPartitioner
from repro.workloads import QueryGenConfig, QueryGenerator, load_dataset, toy_figure1


class TestPaperExamplesDistributed:
    """The worked examples of §2.2/§3.1 through the distributed engine."""

    @pytest.fixture(scope="class")
    def fig1_engine(self):
        return DisksEngine.build(
            toy_figure1(),
            EngineConfig(num_fragments=2, lambda_factor=None, max_radius=math.inf),
        )

    def test_example1_sgkq(self, fig1_engine):
        assert fig1_engine.results(sgkq(["museum", "school"], 3.0)) == {1, 4}

    def test_example2_rkq(self, fig1_engine):
        assert fig1_engine.results(rkq(1, ["museum"], 4.0)) == {3}

    def test_q2_style_subtraction(self, fig1_engine):
        """Near a school but not within 2 of the museum."""
        query = sgkq_extended(
            all_within=[("school", 3.0)], none_within=[("museum", 2.0)]
        )
        # R(school,3) = {A,B,E}; R(museum,2) = {D,E}; difference = {A,B}.
        assert fig1_engine.results(query) == {0, 1}

    def test_q5_style_union(self, fig1_engine):
        query = sgkq_extended(any_within=[("park", 3.0), ("school", 0.0)])
        # R(park,3) = {C,D}; R(school,0) = {A}.
        assert fig1_engine.results(query) == {0, 2, 3}


class TestDatasetPipelines:
    @pytest.fixture(scope="class")
    def deployment(self, aus_tiny):
        engine = DisksEngine.build(
            aus_tiny.network,
            EngineConfig(
                num_fragments=6,
                lambda_factor=15.0,
                partitioner=MultilevelPartitioner(seed=2),
            ),
        )
        return aus_tiny, engine, CentralizedEvaluator(aus_tiny.network)

    def test_generated_sgkq_batch_matches_oracle(self, deployment):
        dataset, engine, oracle = deployment
        gen = QueryGenerator(dataset.network, QueryGenConfig(seed=11))
        radius = engine.max_radius / 2
        for query in gen.sgkq_batch(6, 3, radius):
            assert engine.results(query) == oracle.results(query)

    def test_generated_rkq_batch_matches_oracle(self, deployment):
        dataset, engine, oracle = deployment
        gen = QueryGenerator(dataset.network, QueryGenConfig(seed=12))
        for query in gen.rkq_batch(6, 2, engine.max_radius / 3):
            assert engine.results(query) == oracle.results(query)

    def test_dfunction_mixes_match_oracle(self, deployment):
        dataset, engine, oracle = deployment
        gen = QueryGenerator(dataset.network, QueryGenConfig(seed=13))
        for minus in range(0, 4):
            query = gen.dfunction_mix(4, engine.max_radius / 2, minus)
            assert engine.results(query) == oracle.results(query)

    def test_zero_communication_invariant(self, deployment):
        dataset, engine, _oracle = deployment
        gen = QueryGenerator(dataset.network, QueryGenConfig(seed=14))
        for query in gen.sgkq_batch(3, 2, engine.max_radius / 2):
            engine.execute(query)
        assert engine.cluster.ledger.worker_to_worker_bytes() == 0

    def test_bsp_agrees_but_communicates(self, deployment):
        dataset, engine, oracle = deployment
        gen = QueryGenerator(dataset.network, QueryGenConfig(seed=15))
        query = gen.sgkq(2, engine.max_radius / 2)
        bsp = BSPQueryEvaluator(dataset.network, engine.partition)
        result = bsp.execute(query)
        assert result.result_nodes == oracle.results(query)
        assert result.stats.cross_worker_messages > 0
        assert result.stats.supersteps > 1

    def test_spatial_partitioner_pipeline(self, aus_tiny):
        engine = DisksEngine.build(
            aus_tiny.network,
            EngineConfig(
                num_fragments=4, lambda_factor=10.0, partitioner=SpatialPartitioner()
            ),
        )
        oracle = CentralizedEvaluator(aus_tiny.network)
        gen = QueryGenerator(aus_tiny.network, QueryGenConfig(seed=16))
        query = gen.sgkq(2, engine.max_radius / 2)
        assert engine.results(query) == oracle.results(query)

    def test_node_policy_all_pipeline(self, aus_tiny):
        engine = DisksEngine.build(
            aus_tiny.network,
            EngineConfig(
                num_fragments=4,
                lambda_factor=10.0,
                node_policy=DLNodePolicy.ALL,
                partitioner=MultilevelPartitioner(seed=3),
            ),
        )
        junction = next(
            n for n in aus_tiny.network.nodes() if not aus_tiny.network.is_object(n)
        )
        keyword = aus_tiny.frequent_keywords(1)[0]
        query = rkq(junction, [keyword], engine.max_radius / 2)
        oracle = CentralizedEvaluator(aus_tiny.network)
        assert engine.results(query) == oracle.results(query)


class TestResponseTimeSemantics:
    def test_response_below_serial_total_for_many_fragments(self, aus_tiny):
        """With per-machine parallelism the makespan beats serial work."""
        engine = DisksEngine.build(
            aus_tiny.network,
            EngineConfig(num_fragments=8, lambda_factor=15.0),
        )
        gen = QueryGenerator(aus_tiny.network, QueryGenConfig(seed=17))
        query = gen.sgkq(3, engine.max_radius / 2)
        report = engine.execute(query)
        assert report.response_seconds < report.total_task_seconds + \
            report.communication_seconds + 1e-9
        assert report.unbalance <= report.unbalance_bound + 1e-9
