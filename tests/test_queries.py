"""Tests for the query constructors and their §3.1 reductions."""

from __future__ import annotations

import pytest

from repro.core import (
    CoverageTerm,
    KeywordSource,
    NodeSource,
    QClassQuery,
    SetOp,
    rkq,
    sgkq,
    sgkq_extended,
)
from repro.exceptions import QueryError


class TestSources:
    def test_keyword_source_validation(self):
        with pytest.raises(QueryError):
            KeywordSource("")
        assert str(KeywordSource("cafe")) == "kw:cafe"

    def test_node_source_validation(self):
        with pytest.raises(QueryError):
            NodeSource(-1)
        assert str(NodeSource(7)) == "node:7"

    def test_term_validation(self):
        with pytest.raises(QueryError):
            CoverageTerm(KeywordSource("x"), -1.0)


class TestSGKQ:
    def test_reduction_is_intersection_chain(self):
        q = sgkq(["a", "b", "c"], 2.0)
        assert len(q.terms) == 3
        assert all(t.radius == 2.0 for t in q.terms)
        assert q.keywords() == ["a", "b", "c"]
        # X0 ∩ X1 ∩ X2 semantics:
        assert q.expression.evaluate([{1, 2}, {2, 3}, {2}]) == {2}

    def test_empty_keywords_rejected(self):
        with pytest.raises(QueryError):
            sgkq([], 1.0)

    def test_duplicate_keywords_rejected(self):
        with pytest.raises(QueryError):
            sgkq(["a", "a"], 1.0)

    def test_default_label(self):
        assert "SGKQ" in sgkq(["a"], 1.0).label

    def test_max_radius(self):
        assert sgkq(["a", "b"], 3.5).max_radius == 3.5


class TestExtendedSGKQ:
    def test_q2_shape(self):
        """Q2: R(shopping mall, 0) − R(pizza shop, 1km)."""
        q = sgkq_extended(
            all_within=[("shopping mall", 0.0)],
            none_within=[("pizza shop", 1.0)],
        )
        assert len(q.terms) == 2
        assert q.expression.evaluate([{1, 2}, {2}]) == {1}

    def test_q5_shape(self):
        """Q5: R(university, 0.5) ∪ R(park, 0.5)."""
        q = sgkq_extended(any_within=[("university", 0.5), ("park", 0.5)])
        assert q.expression.evaluate([{1}, {2}]) == {1, 2}

    def test_combined_all_any_none(self):
        q = sgkq_extended(
            all_within=[("a", 1.0)],
            any_within=[("b", 1.0), ("c", 1.0)],
            none_within=[("d", 2.0)],
        )
        # a ∩ (b ∪ c) − d
        sets = [{1, 2, 3}, {1}, {2}, {2}]
        assert q.expression.evaluate(sets) == {1}

    def test_needs_positive_condition(self):
        with pytest.raises(QueryError):
            sgkq_extended(none_within=[("x", 1.0)])

    def test_per_keyword_radiuses(self):
        q = sgkq_extended(all_within=[("a", 1.0), ("b", 5.0)])
        assert [t.radius for t in q.terms] == [1.0, 5.0]
        assert q.max_radius == 5.0


class TestRKQ:
    def test_reduction(self):
        """Example 2: RKQ(B, {museum}, 4) = R(B, 4) ∩ R(museum, 0)."""
        q = rkq(1, ["museum"], 4.0)
        assert isinstance(q.terms[0].source, NodeSource)
        assert q.terms[0].radius == 4.0
        assert isinstance(q.terms[1].source, KeywordSource)
        assert q.terms[1].radius == 0.0
        assert q.node_sources() == [1]
        assert q.keywords() == ["museum"]

    def test_multi_keyword(self):
        q = rkq(0, ["a", "b", "c"], 2.0)
        assert len(q.terms) == 4
        assert all(t.radius == 0.0 for t in q.terms[1:])

    def test_validation(self):
        with pytest.raises(QueryError):
            rkq(0, [], 1.0)
        with pytest.raises(QueryError):
            rkq(0, ["a", "a"], 1.0)


class TestQClassQuery:
    def test_chain_arity_checked(self):
        terms = (CoverageTerm(KeywordSource("a"), 1.0),)
        with pytest.raises(QueryError):
            QClassQuery.from_chain(terms, [SetOp.UNION])

    def test_expression_term_bounds_checked(self):
        from repro.core.dfunction import term

        with pytest.raises(QueryError):
            QClassQuery((CoverageTerm(KeywordSource("a"), 1.0),), term(3))

    def test_no_terms_rejected(self):
        from repro.core.dfunction import term

        with pytest.raises(QueryError):
            QClassQuery((), term(0))

    def test_str_contains_terms(self):
        q = sgkq(["cafe"], 1.0)
        assert "kw:cafe" in str(q)
