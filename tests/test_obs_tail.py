"""Tail-based retention: token buckets, dynamic threshold, policy."""

from __future__ import annotations

import random

import pytest

from repro.obs.tail import LatencyThreshold, RetentionPolicy, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_from_elapsed_time(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(0.5)  # 2 tokens/s * 0.5s = 1 token back
        assert not bucket.try_take(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        for _ in range(2):
            assert bucket.try_take(0.0)
        # A long idle period banks at most `burst` tokens.
        assert [bucket.try_take(1000.0) for _ in range(3)] == [True, True, False]

    def test_clock_going_backwards_is_harmless(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_take(10.0)
        assert not bucket.try_take(5.0)

    @pytest.mark.parametrize("rate,burst", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_rejects_nonpositive_parameters(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate, burst)


class TestLatencyThreshold:
    def test_floor_decides_alone_while_warming(self):
        threshold = LatencyThreshold(100.0, min_samples=10)
        assert threshold.p99_ms() is None
        assert threshold.is_slow(0.2)  # 200ms >= 100ms floor
        assert not threshold.is_slow(0.05)

    def test_p99_gate_engages_after_min_samples(self):
        threshold = LatencyThreshold(1000.0, min_samples=100)
        for _ in range(99):
            threshold.observe(0.010)
        assert threshold.p99_ms() is None
        threshold.observe(0.010)
        p99 = threshold.p99_ms()
        assert p99 == pytest.approx(10.0)
        # Above the windowed p99 but far under the floor: still slow.
        assert threshold.is_slow(0.020)
        assert not threshold.is_slow(0.010)

    def test_floor_still_bites_with_a_fast_window(self):
        threshold = LatencyThreshold(50.0, min_samples=10)
        for _ in range(20):
            threshold.observe(0.001)
        assert threshold.is_slow(0.060)

    def test_window_is_a_ring(self):
        threshold = LatencyThreshold(10_000.0, window=100, min_samples=10)
        for _ in range(100):
            threshold.observe(1.0)
        for _ in range(100):  # the slow regime must age out entirely
            threshold.observe(0.001)
        assert threshold.p99_ms() == pytest.approx(1.0)


def make_policy(clock, **kwargs):
    defaults = dict(
        slow_ms=100.0,
        normal_rate=0.0,
        clock=clock,
        rng=random.Random(7),
    )
    defaults.update(kwargs)
    return RetentionPolicy(**defaults)


class TestRetentionPolicy:
    def test_slow_query_is_retained(self):
        policy = make_policy(FakeClock())
        assert policy.decide(0.250) == ("slow",)
        assert policy.decide(0.010) == ()

    def test_error_and_degraded_are_retained(self):
        policy = make_policy(FakeClock())
        assert policy.decide(0.010, error=True) == ("error",)
        assert policy.decide(0.010, degraded=True) == ("error",)

    def test_errors_do_not_feed_the_latency_window(self):
        policy = make_policy(FakeClock(), slow_ms=10_000.0)
        # A storm of 10s timeouts must not drag the p99 up to 10s.
        for _ in range(200):
            policy.decide(10.0, error=True)
        assert policy.threshold.p99_ms() is None

    def test_rerouted_and_cache_stale(self):
        policy = make_policy(FakeClock())
        assert policy.decide(0.010, attempt=1) == ("rerouted",)
        assert policy.decide(0.010, cache_stale=True) == ("cache_stale",)

    def test_epoch_adjacent_window(self):
        policy = make_policy(FakeClock(), epoch_window_seconds=1.0)
        assert policy.decide(0.010, seconds_since_swap=0.5) == ("epoch_adjacent",)
        assert policy.decide(0.010, seconds_since_swap=2.0) == ()
        assert policy.decide(0.010, seconds_since_swap=None) == ()

    def test_multiple_categories_stack(self):
        policy = make_policy(FakeClock())
        kept = policy.decide(0.250, attempt=2, cache_stale=True)
        assert kept == ("slow", "rerouted", "cache_stale")

    def test_normal_reservoir_is_probabilistic(self):
        policy = make_policy(
            FakeClock(),
            normal_rate=0.5,
            category_rates={"normal": (1000.0, 1000.0)},
            rng=random.Random(0),
        )
        kept = sum(policy.decide(0.001) == ("normal",) for _ in range(1000))
        assert 400 < kept < 600

    def test_token_bucket_bounds_a_burst(self):
        clock = FakeClock()
        policy = make_policy(clock, category_rates={"slow": (1.0, 5.0)})
        kept = sum(bool(policy.decide(0.500)) for _ in range(100))
        assert kept == 5  # burst exhausted, no time passes
        clock.advance(2.0)
        assert policy.decide(0.500) == ("slow",)  # refilled

    def test_snapshot_counters_audit_the_bias(self):
        clock = FakeClock()
        policy = make_policy(clock, category_rates={"slow": (1.0, 2.0)})
        for _ in range(5):
            policy.decide(0.500)
        policy.decide(0.010, error=True)
        policy.decide(0.001)
        snapshot = policy.snapshot()
        assert snapshot["seen"] == 7
        assert snapshot["kept"] == 3  # 2 slow (burst) + 1 error
        assert snapshot["triggered"]["slow"] == 5
        assert snapshot["retained"]["slow"] == 2
        assert snapshot["shed"]["slow"] == 3
        assert snapshot["retained"]["error"] == 1
        assert snapshot["slow_threshold_ms"] == 100.0
