"""Integration: querying a simplified network gives the same answers.

Degree-2 contraction preserves distances between retained nodes, so for
any SGKQ the result restricted to retained nodes must be identical
(modulo the id remapping) whether the engine runs on the original or the
simplified network — contracted shape nodes are the only difference.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import DisksEngine, EngineConfig, sgkq
from repro.graph import simplify_network
from repro.partition import BfsPartitioner

from helpers import make_random_network


def build_engine(net, seed):
    return DisksEngine.build(
        net,
        EngineConfig(
            num_fragments=3,
            lambda_factor=None,
            max_radius=math.inf,
            partitioner=BfsPartitioner(seed=seed),
        ),
    )


class TestSimplifiedQueries:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500), radius=st.floats(min_value=0.5, max_value=5.0))
    def test_results_agree_on_retained_nodes(self, seed, radius):
        net = make_random_network(
            seed=seed, num_junctions=25, num_objects=10, vocabulary=3, extra_edge_prob=0.04
        )
        simplified = simplify_network(net)
        keywords = sorted(net.all_keywords())[:2]
        query = sgkq(keywords, radius)

        original = build_engine(net, seed).results(query)
        reduced = build_engine(simplified.network, seed).results(query)

        retained_original = {
            simplified.new_id(node) for node in original if node in simplified.node_mapping
        }
        assert retained_original == set(reduced)

    def test_objects_always_comparable(self):
        """Objects survive simplification, so object-level answers are total."""
        net = make_random_network(seed=77, num_junctions=30, num_objects=12, vocabulary=3)
        simplified = simplify_network(net)
        keywords = sorted(net.all_keywords())[:2]
        query = sgkq(keywords, 3.0)
        original = build_engine(net, 1).results(query)
        reduced = build_engine(simplified.network, 1).results(query)
        original_objects = {n for n in original if net.is_object(n)}
        reduced_objects = {
            n for n in reduced if simplified.network.is_object(n)
        }
        assert {simplified.new_id(n) for n in original_objects} == reduced_objects
