"""Standing queries through the serving layer (`subscribe`/`notify`).

Covers the wire ops, push delivery interleaved with request/reply
traffic on one connection, the bounded-queue shed-to-resync path, and
connection-close cleanup.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from types import SimpleNamespace

import pytest

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.core.queries import sgkq
from repro.live import AddKeyword, EpochManager
from repro.partition import BfsPartitioner
from repro.serve import (
    MetricsRegistry,
    PipelinedCluster,
    ServeClient,
    ServeConfig,
    serve_in_thread,
)
from repro.serve.protocol import encode_line
from repro.serve.server import _Connection, _SubChannel
from repro.sub import SubscriptionEngine, SubscriptionNotice

from helpers import make_random_network


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=660, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=6).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, partition, fragments, indexes


def live_deployment(built):
    net, partition, fragments, indexes = built
    cluster = PipelinedCluster.start(fragments, indexes, num_machines=2)
    manager = EpochManager(
        network=net,
        partition=partition,
        fragments=list(fragments),
        indexes=list(indexes),
    )
    manager.subscribe(
        lambda state, delta: cluster.apply_updates(state.epoch, list(delta.values()))
    )
    return cluster, manager


def wait_until(predicate, timeout_seconds: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_seconds
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestSubscribeWire:
    def test_subscribe_notify_unsubscribe_roundtrip(self, built):
        net = built[0]
        cluster, manager = live_deployment(built)
        engine = SubscriptionEngine(manager)
        node = sorted(net.object_nodes())[0]
        try:
            with serve_in_thread(
                cluster, ServeConfig(max_inflight=8), updater=manager,
                sub_engine=engine,
            ) as server:
                with ServeClient(server.host, server.port) as subscriber, \
                        ServeClient(server.host, server.port) as updater:
                    reply = subscriber.subscribe("HAS(sub-wire-kw)", request_id="r1")
                    assert reply["ok"], reply
                    assert reply["id"] == "r1"
                    assert reply["sub"] == "s1"
                    assert reply["epoch"] == 0
                    assert reply["nodes"] == []
                    assert reply["scored"] is False

                    applied = updater.update([AddKeyword(node, "sub-wire-kw")])
                    assert applied["ok"], applied

                    frames = list(subscriber.notifications(timeout_seconds=5.0))
                    assert frames, "no notify frame arrived"
                    notify = frames[0]
                    assert notify["push"] == "notify"
                    assert notify["sub"] == "s1"
                    assert notify["epoch"] == 1
                    assert notify["added"] == [node]
                    assert notify["removed"] == []

                    dropped = subscriber.unsubscribe("s1")
                    assert dropped["ok"] and dropped["removed"] is True
                    again = subscriber.unsubscribe("s1")
                    assert again["ok"] and again["removed"] is False

                    stats = subscriber.stats()
                    assert stats["counters"]["subscribes_received"] == 1
                    assert stats["counters"]["sub_notifications"] == 1
                    assert stats["subscriptions"]["subscriptions"] == 0
        finally:
            cluster.shutdown()

    def test_errors_are_typed(self, built):
        cluster, manager = live_deployment(built)
        engine = SubscriptionEngine(manager)
        try:
            with serve_in_thread(
                cluster, ServeConfig(max_inflight=8), updater=manager,
                sub_engine=engine,
            ) as server:
                with ServeClient(server.host, server.port) as client:
                    bad_text = client.subscribe("NEAR(")
                    assert bad_text["error"] == "parse"
                    bad_id = client.request(
                        {"op": "subscribe", "q": "HAS(w0)", "sub": 7}
                    )
                    assert bad_id["error"] == "bad-subscribe"
                    client.subscribe("HAS(w0)", sub_id="mine")
                    duplicate = client.subscribe("HAS(w1)", sub_id="mine")
                    assert duplicate["error"] == "bad-subscribe"
                    # Unsubscribe is idempotent: a missing/unknown sub id
                    # is not an error, it just removed nothing.
                    missing = client.request({"op": "unsubscribe"})
                    assert missing["ok"] is True and missing["removed"] is False
        finally:
            cluster.shutdown()

    def test_subscribe_without_engine_rejected(self, built):
        _net, _partition, fragments, indexes = built
        cluster = PipelinedCluster.start(fragments, indexes, num_machines=2)
        try:
            with serve_in_thread(cluster, ServeConfig(max_inflight=8)) as server:
                with ServeClient(server.host, server.port) as client:
                    assert client.subscribe("HAS(w0)")["error"] == "no-sub"
                    assert client.unsubscribe("s1")["error"] == "no-sub"
        finally:
            cluster.shutdown()

    def test_connection_close_unregisters_subscriptions(self, built):
        cluster, manager = live_deployment(built)
        engine = SubscriptionEngine(manager)
        try:
            with serve_in_thread(
                cluster, ServeConfig(max_inflight=8), updater=manager,
                sub_engine=engine,
            ) as server:
                client = ServeClient(server.host, server.port)
                client.subscribe("HAS(w0)")
                client.subscribe("HAS(w1)")
                assert len(engine.registry) == 2
                client.close()
                assert wait_until(lambda: len(engine.registry) == 0), (
                    "subscriptions outlived their connection"
                )
        finally:
            cluster.shutdown()


class TestInterleaving:
    def test_queries_and_notifications_share_a_connection(self, built):
        """Satellite: pushes interleave with request/reply traffic and
        both demux sides park frames for the other."""
        net = built[0]
        cluster, manager = live_deployment(built)
        engine = SubscriptionEngine(manager)
        objects = sorted(net.object_nodes())
        try:
            with serve_in_thread(
                cluster, ServeConfig(max_inflight=8), updater=manager,
                sub_engine=engine,
            ) as server:
                with ServeClient(server.host, server.port) as subscriber, \
                        ServeClient(server.host, server.port) as updater:
                    subscribed = subscriber.subscribe("HAS(interleave-kw)")
                    assert subscribed["ok"]

                    # Round 1: a pipelined query is in flight while a
                    # push arrives; read_reply must skip (and park) it.
                    subscriber.send({"id": "q1", "q": "HAS(w0)"})
                    assert updater.update([AddKeyword(objects[0], "interleave-kw")])[
                        "ok"
                    ]
                    reply = subscriber.read_reply()
                    assert reply["id"] == "q1" and reply["ok"]
                    frames = list(subscriber.notifications(timeout_seconds=5.0))
                    assert [f["added"] for f in frames] == [[objects[0]]]

                    # Round 2: consume the push *first*; the reply the
                    # iterator encounters is parked for read_reply.
                    subscriber.send({"id": "q2", "q": "HAS(w1)"})
                    assert updater.update([AddKeyword(objects[1], "interleave-kw")])[
                        "ok"
                    ]
                    notify = None
                    for frame in subscriber.notifications(timeout_seconds=5.0):
                        notify = frame
                        break
                    assert notify is not None
                    assert notify["push"] == "notify"
                    assert notify["added"] == [objects[1]]
                    reply = subscriber.read_reply()
                    assert reply["id"] == "q2" and reply["ok"]
        finally:
            cluster.shutdown()


class TestShedding:
    def test_channel_sheds_to_resync_when_queue_is_full(self, built):
        """Unit-level shed path: with the drain task unable to run
        between pushes, overflow notices collapse into one resync frame
        carrying the full snapshot."""
        cluster, manager = live_deployment(built)
        engine = SubscriptionEngine(manager)
        metrics = MetricsRegistry()
        # Any standing query with a non-empty result will do.
        sub = engine.register(sgkq(["w0"], 50.0))
        frames: list[bytes] = []

        class FakeWriter:
            def write(self, data: bytes) -> None:
                frames.append(data)

            async def drain(self) -> None:
                pass

        async def respond(conn, payload):
            async with conn.write_lock:
                conn.writer.write(encode_line(payload))
                await conn.writer.drain()

        server = SimpleNamespace(
            metrics=metrics, sub_engine=engine, _respond=respond
        )

        async def scenario():
            conn = _Connection(FakeWriter(), binary=False)
            channel = _SubChannel(
                server, conn, asyncio.get_running_loop(), 1
            )
            channel.subs.add(sub.sub_id)

            def notice(epoch: int) -> SubscriptionNotice:
                return SubscriptionNotice(
                    sub_id=sub.sub_id, epoch=epoch, added=(epoch,), removed=()
                )

            # Three pushes with no await in between: the first fills the
            # queue (limit 1), the next two are dropped and marked.
            channel.push(notice(1))
            channel.push(notice(2))
            channel.push(notice(3))
            await asyncio.sleep(0.1)  # let the drain task run

        asyncio.run(scenario())
        try:
            decoded = [json.loads(line) for line in frames]
            assert [frame["push"] for frame in decoded] == ["notify", "resync"]
            assert decoded[0]["epoch"] == 1
            resync = decoded[1]
            assert resync["sub"] == sub.sub_id
            assert resync["dropped"] == 2
            assert resync["nodes"] == sorted(sub.result)
            assert resync["epoch"] == engine.epoch
            assert metrics.counter("sub_dropped") == 2
            assert metrics.counter("sub_resyncs") == 1
        finally:
            cluster.shutdown()

    def test_slow_consumer_converges_via_resync(self, built):
        """E2E contract: a client that stops reading, then replays the
        frame stream (applying deltas, honouring resync's discard rule),
        ends bit-identical to the server's state for every sub."""
        net = built[0]
        cluster, manager = live_deployment(built)
        engine = SubscriptionEngine(manager)
        objects = sorted(net.object_nodes())
        num_subs, num_batches = 8, 5
        try:
            with serve_in_thread(
                cluster,
                ServeConfig(max_inflight=8, sub_queue_limit=1),
                updater=manager,
                sub_engine=engine,
            ) as server:
                with ServeClient(server.host, server.port) as subscriber, \
                        ServeClient(server.host, server.port) as updater:
                    states: dict[str, set[int]] = {}
                    resync_epoch: dict[str, int] = {}
                    for i in range(num_subs):
                        reply = subscriber.subscribe(f"HAS(shed-kw{i % 2})")
                        assert reply["ok"], reply
                        states[reply["sub"]] = set(reply["nodes"])
                        resync_epoch[reply["sub"]] = reply["epoch"]

                    # Updates affecting every subscription, while the
                    # subscriber reads nothing.
                    for batch in range(num_batches):
                        node = objects[batch % len(objects)]
                        ops = [AddKeyword(node, f"shed-kw{batch % 2}")]
                        assert updater.update(ops)["ok"]
                    # Let pending drains flush before draining frames.
                    time.sleep(0.3)

                    for frame in subscriber.notifications(timeout_seconds=1.0):
                        sub_id = frame["sub"]
                        if frame["push"] == "resync":
                            states[sub_id] = set(frame["nodes"])
                            resync_epoch[sub_id] = frame["epoch"]
                            continue
                        assert frame["push"] == "notify"
                        if frame["epoch"] <= resync_epoch[sub_id]:
                            continue  # superseded by a resync
                        states[sub_id] |= set(frame["added"])
                        states[sub_id] -= set(frame["removed"])

                    for sub_id, nodes in states.items():
                        expected = engine.snapshot(sub_id)["nodes"]
                        assert sorted(nodes) == expected, sub_id
        finally:
            cluster.shutdown()
