"""Adversarial frame-parser fuzzing: malformed bytes never hang or crash.

Two layers:

* **sans-IO** — thousands of random and mutated byte strings through
  :class:`~repro.serve.wire.FrameDecoder` and every payload decoder.
  The only acceptable outcomes are a decoded value or
  :class:`~repro.serve.wire.WireProtocolError`; any other exception is
  a parser bug.
* **live server** — adversarial TCP connections (truncated preambles,
  torn length prefixes that stall mid-read, oversized declared lengths,
  garbage streams, NDJSON/binary mixups on one connection).  Every one
  must end with a clean protocol error and a closed connection inside
  the frame timeout — and the server must keep answering well-formed
  clients afterwards.
"""

from __future__ import annotations

import math
import random
import socket
import struct
import time

import pytest

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.partition import BfsPartitioner
from repro.serve import (
    BinaryServeClient,
    PipelinedCluster,
    ServeClient,
    ServeConfig,
    serve_in_thread,
    wire,
)
from repro.serve.protocol import encode_line

from helpers import make_random_network

# The acceptance floor: at least this many distinct malformed inputs
# must go through the parsers without a hang or a non-protocol error.
MALFORMED_FLOOR = 1000


def _valid_frames() -> list[bytes]:
    """A corpus of well-formed frames to mutate."""
    from repro.core.queries import rkq, sgkq

    query = sgkq(["cafe", "fuel"], 5.0)
    other = rkq(3, ["bar"], radius=2.5)
    body = wire.encode_query_body(query)
    return [
        wire.encode_hello(0),
        wire.encode_frame(wire.FRAME_QUERY, wire.encode_query_payload(7, query)),
        wire.encode_frame(wire.FRAME_QUERY, wire.encode_query_payload(8, other)),
        wire.encode_answer(
            9, {1, 2, 3}, degraded=False, latency_ms=1.0, wall_ms=0.5,
            makespan_ms=0.25, message_bytes=64,
        ),
        wire.encode_error(10, "timeout", "too slow"),
        wire.encode_json_frame({"op": "ping", "id": 11}),
        wire.encode_batch([(12, body), (13, body)]),
        wire.encode_update(
            14,
            [
                {"op": "add_keyword", "node": 4, "keyword": "cafe"},
                {"op": "set_edge_weight", "u": 1, "v": 2, "weight": 3.5},
            ],
        ),
        wire.encode_update_ack(15, epoch=2, applied=5, staleness_ms=1.25),
    ]


def _feed_all(data: bytes) -> None:
    """Push bytes through a FrameDecoder + the payload decoders.

    Raises only WireProtocolError (or succeeds); anything else bubbles
    out and fails the test.
    """
    decoder = wire.FrameDecoder()
    decoder.feed(data)
    payload_decoders = {
        wire.FRAME_HELLO: wire.decode_hello,
        wire.FRAME_QUERY: wire.decode_query_payload,
        wire.FRAME_ANSWER: wire.decode_answer,
        wire.FRAME_ERROR: wire.decode_error,
        wire.FRAME_JSON: wire.decode_json_payload,
        wire.FRAME_BATCH: wire.decode_batch,
        wire.FRAME_UPDATE: wire.decode_update,
        wire.FRAME_UPDATE_ACK: wire.decode_update_ack,
    }
    for _ in range(64):  # bounded: a fuzz input can hold only so many frames
        frame = decoder.next_frame()
        if frame is None:
            return
        frame_type, payload = frame
        payload_decoders[frame_type](payload)


class TestSansIOFuzz:
    def test_random_garbage_never_hangs_or_crashes(self):
        rng = random.Random(0xD5C)
        survived = 0
        for _ in range(MALFORMED_FLOOR):
            blob = rng.randbytes(rng.randint(0, 200))
            started = time.perf_counter()
            try:
                _feed_all(blob)
            except wire.WireProtocolError:
                pass
            assert time.perf_counter() - started < 1.0
            survived += 1
        assert survived == MALFORMED_FLOOR

    def test_mutated_valid_frames_never_crash(self):
        rng = random.Random(0xBEEF)
        corpus = _valid_frames()
        cases = 0
        for _ in range(MALFORMED_FLOOR):
            blob = bytearray(rng.choice(corpus))
            mutation = rng.randrange(4)
            if mutation == 0 and len(blob) > 1:  # truncate
                del blob[rng.randrange(1, len(blob)) :]
            elif mutation == 1:  # flip a byte
                i = rng.randrange(len(blob))
                blob[i] ^= rng.randrange(1, 256)
            elif mutation == 2:  # append garbage
                blob += rng.randbytes(rng.randint(1, 32))
            else:  # splice two frames mid-byte
                other = rng.choice(corpus)
                blob = blob[: rng.randrange(1, len(blob))] + other
            try:
                _feed_all(bytes(blob))
            except wire.WireProtocolError:
                pass
            cases += 1
        assert cases == MALFORMED_FLOOR

    def test_pipe_decoder_rejects_garbage(self):
        rng = random.Random(0xF00)
        for _ in range(300):
            blob = rng.randbytes(rng.randint(1, 120))
            if blob[0] == 0x80:
                continue  # would be routed to pickle; not this parser's job
            try:
                wire.loads_pipe(blob)
            except wire.WireProtocolError:
                pass

    def test_truncations_of_every_valid_frame_fail_cleanly(self):
        """Every proper prefix either waits for more bytes or raises."""
        for frame in _valid_frames():
            for cut in range(len(frame)):
                try:
                    _feed_all(frame[:cut])
                except wire.WireProtocolError:
                    pass


# ----------------------------------------------------------------------
# Live-server adversaries
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def deployment():
    net = make_random_network(seed=670, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=8).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    cluster = PipelinedCluster.start(fragments, indexes, num_machines=2)
    config = ServeConfig(max_inflight=8, frame_timeout_seconds=0.5)
    try:
        with serve_in_thread(cluster, config) as server:
            yield net, server
    finally:
        cluster.shutdown()


def _connect(server) -> socket.socket:
    sock = socket.create_connection((server.host, server.port), timeout=10.0)
    sock.settimeout(10.0)
    return sock


def _drain_until_close(sock: socket.socket, deadline_seconds: float = 8.0) -> bytes:
    """Read until the server closes; fail the test on a hang.

    A connection reset counts as a close: when the server aborts a
    connection that still has unread client bytes queued, TCP answers
    with RST, which can discard data the server already wrote.  The
    property under test is "terminates promptly", not "flushes politely
    to a client that kept spamming".
    """
    sock.settimeout(deadline_seconds)
    received = bytearray()
    started = time.perf_counter()
    while True:
        try:
            chunk = sock.recv(65536)
        except (TimeoutError, socket.timeout):  # pragma: no cover - the failure mode
            pytest.fail("the server neither answered nor closed the connection")
        except ConnectionResetError:
            return bytes(received)
        if not chunk:
            return bytes(received)
        received.extend(chunk)
        assert time.perf_counter() - started < deadline_seconds


def _frames_of(data: bytes) -> list[tuple[int, bytes]]:
    decoder = wire.FrameDecoder()
    decoder.feed(data)
    frames = []
    while (frame := decoder.next_frame()) is not None:
        frames.append(frame)
    return frames


def _assert_alive(server, net) -> None:
    """A well-formed client still gets answers — no coordinator crash."""
    with BinaryServeClient(server.host, server.port) as client:
        keyword = sorted(net.all_keywords())[0]
        reply = client.query(f"NEAR({keyword}, 4)")
        assert reply["ok"], reply


class TestServerAdversaries:
    def test_bad_magic_gets_error_and_close(self, deployment):
        net, server = deployment
        with _connect(server) as sock:
            sock.sendall(b"DSKP\x01\x00")  # near-miss magic
            frames = _frames_of(_drain_until_close(sock))
            assert frames and frames[-1][0] == wire.FRAME_ERROR
            assert wire.decode_error(frames[-1][1])["error"] == "wire"
        _assert_alive(server, net)

    def test_truncated_preamble_times_out_and_closes(self, deployment):
        net, server = deployment
        with _connect(server) as sock:
            sock.sendall(b"DSK")  # stall mid-preamble
            _drain_until_close(sock)
        _assert_alive(server, net)

    def test_torn_length_prefix_times_out_cleanly(self, deployment):
        net, server = deployment
        with _connect(server) as sock:
            sock.sendall(wire.encode_preamble())
            hello = _frames_of(sock.recv(4096))
            assert hello[0][0] == wire.FRAME_HELLO
            sock.sendall(b"\x10\x00")  # two bytes of a four-byte prefix, then stall
            frames = _frames_of(_drain_until_close(sock))
            assert frames and frames[-1][0] == wire.FRAME_ERROR
        _assert_alive(server, net)

    def test_torn_payload_times_out_cleanly(self, deployment):
        net, server = deployment
        with _connect(server) as sock:
            sock.sendall(wire.encode_preamble())
            sock.recv(4096)
            # Declare 100 payload bytes, deliver 10, stall.
            sock.sendall(wire.LENGTH_PREFIX.pack(101) + bytes([wire.FRAME_QUERY]))
            sock.sendall(b"\x00" * 10)
            frames = _frames_of(_drain_until_close(sock))
            assert frames and frames[-1][0] == wire.FRAME_ERROR
            assert "truncated" in wire.decode_error(frames[-1][1]).get("detail", "")
        _assert_alive(server, net)

    def test_oversized_declared_length_rejected_immediately(self, deployment):
        net, server = deployment
        with _connect(server) as sock:
            sock.sendall(wire.encode_preamble())
            sock.recv(4096)
            started = time.perf_counter()
            sock.sendall(wire.LENGTH_PREFIX.pack(2**31 - 1))
            frames = _frames_of(_drain_until_close(sock))
            # Rejected on the prefix alone — no waiting for 2 GiB.
            assert time.perf_counter() - started < 5.0
            assert frames and frames[-1][0] == wire.FRAME_ERROR
            assert "length" in wire.decode_error(frames[-1][1]).get("detail", "")
        _assert_alive(server, net)

    def test_ndjson_on_a_binary_connection_is_a_protocol_error(self, deployment):
        net, server = deployment
        with _connect(server) as sock:
            sock.sendall(wire.encode_preamble())
            sock.recv(4096)
            sock.sendall(encode_line({"id": 1, "q": "NEAR(cafe, 5)"}))
            frames = _frames_of(_drain_until_close(sock))
            assert frames and frames[-1][0] == wire.FRAME_ERROR
        _assert_alive(server, net)

    def test_binary_frames_on_an_ndjson_connection_get_bad_json(self, deployment):
        """First byte isn't the magic, so the frame lands on the NDJSON
        path and must come back as a bad-json reply, not a hang."""
        net, server = deployment
        with _connect(server) as sock:
            frame = wire.encode_json_frame({"op": "ping"})
            assert frame[0:1] != wire.MAGIC[:1]
            sock.sendall(frame + b"\n")
            reply = sock.recv(65536)
            assert b"bad-json" in reply
        _assert_alive(server, net)

    def test_unexpected_frame_type_closes_the_connection(self, deployment):
        net, server = deployment
        with _connect(server) as sock:
            sock.sendall(wire.encode_preamble())
            sock.recv(4096)
            sock.sendall(wire.encode_answer(
                1, set(), degraded=False, latency_ms=0.0, wall_ms=0.0,
                makespan_ms=0.0, message_bytes=0,
            ))
            frames = _frames_of(_drain_until_close(sock))
            assert frames and frames[-1][0] == wire.FRAME_ERROR
            assert "unexpected frame type" in wire.decode_error(
                frames[-1][1]
            ).get("detail", "")
        _assert_alive(server, net)

    def test_malformed_query_payload_closes_before_later_frames_run(self, deployment):
        net, server = deployment
        with _connect(server) as sock:
            sock.sendall(wire.encode_preamble())
            sock.recv(4096)
            # A QUERY frame whose payload is garbage, then a valid one.
            sock.sendall(wire.encode_frame(wire.FRAME_QUERY, b"\xff" * 12))
            good = wire.encode_frame(
                wire.FRAME_QUERY,
                wire.encode_query_payload(
                    2,
                    __import__("repro.core.queries", fromlist=["sgkq"]).sgkq(
                        [sorted(net.all_keywords())[0]], 4.0
                    ),
                ),
            )
            sock.sendall(good)
            frames = _frames_of(_drain_until_close(sock))
            # The valid frame after the poison one was never dispatched:
            # at most the protocol error came back, never an answer.
            # (The ERROR itself can be lost to the close-with-unread-data
            # TCP reset, so an empty read is also acceptable.)
            assert all(t == wire.FRAME_ERROR for t, _ in frames)
            assert len(frames) <= 1
        _assert_alive(server, net)

    def test_garbage_stream_volley_leaves_server_standing(self, deployment):
        """Dozens of connections spraying random bytes; all must close,
        and the server must still answer real queries afterwards."""
        net, server = deployment
        rng = random.Random(0xABAD)
        for i in range(40):
            with _connect(server) as sock:
                blob = rng.randbytes(rng.randint(1, 512))
                if i % 3 == 0:  # valid preamble, then garbage frames
                    blob = wire.encode_preamble() + blob
                try:
                    sock.sendall(blob)
                    # Signal EOF so blobs that land on the NDJSON path
                    # (no magic byte, no trailing newline) terminate the
                    # readline instead of idling for more input.
                    sock.shutdown(socket.SHUT_WR)
                except OSError:
                    continue  # server already closed on us — fine
                _drain_until_close(sock)
        _assert_alive(server, net)
        with ServeClient(server.host, server.port) as client:
            assert client.request({"op": "ping"})["ok"]

    def test_struct_prefix_edge_values(self, deployment):
        """Length prefixes at the integer edges never wedge the reader."""
        net, server = deployment
        for length in (0, 1, 5, wire.MAX_FRAME_BYTES, 2**32 - 1):
            with _connect(server) as sock:
                sock.sendall(wire.encode_preamble())
                sock.recv(4096)
                sock.sendall(struct.pack("<I", length))
                _drain_until_close(sock)
        _assert_alive(server, net)
