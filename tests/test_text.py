"""Tests for the text substrate: vocabulary, inverted indexes, Zipf placement."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DisksError, UnknownKeywordError
from repro.text import (
    ClusteredKeywordPlacer,
    FragmentKeywordIndex,
    InvertedIndex,
    PlacementConfig,
    Vocabulary,
    ZipfSampler,
)
from repro.workloads import toy_figure1

from helpers import make_random_network


class TestVocabulary:
    def test_intern_assigns_dense_ids(self):
        v = Vocabulary()
        assert v.intern("a") == 0
        assert v.intern("b") == 1
        assert v.intern("a") == 0
        assert len(v) == 2

    def test_counting(self):
        v = Vocabulary()
        v.intern("a", count=2)
        v.intern("a", count=3)
        assert v.count("a") == 5
        assert v.count("missing") == 0

    def test_id_and_word_lookup(self):
        v = Vocabulary(["x", "y"])
        assert v.id_of("y") == 1
        assert v.word_of(0) == "x"

    def test_unknown_lookups_raise(self):
        v = Vocabulary()
        with pytest.raises(UnknownKeywordError):
            v.id_of("nope")
        with pytest.raises(UnknownKeywordError):
            v.word_of(3)

    def test_iteration_and_contains(self):
        v = Vocabulary(["a", "b"])
        assert list(v) == ["a", "b"]
        assert "a" in v and "z" not in v

    def test_round_trip(self):
        v = Vocabulary()
        v.intern("a", count=4)
        v.intern("b", count=1)
        clone = Vocabulary.from_list(v.to_list())
        assert clone.frequencies() == v.frequencies()
        assert clone.id_of("b") == v.id_of("b")


class TestInvertedIndex:
    def test_postings_sorted(self):
        net = make_random_network(seed=42, num_objects=15, vocabulary=4)
        inv = InvertedIndex(net)
        for kw in inv.keywords():
            nodes = inv.nodes_with(kw)
            assert list(nodes) == sorted(nodes)
            for node in nodes:
                assert kw in net.keywords(node)

    def test_completeness(self):
        net = make_random_network(seed=43, num_objects=15, vocabulary=4)
        inv = InvertedIndex(net)
        for node in net.nodes():
            for kw in net.keywords(node):
                assert node in inv.nodes_with(kw)

    def test_frequency_matches_network(self):
        net = toy_figure1()
        inv = InvertedIndex(net)
        assert inv.frequency("school") == 1
        assert inv.frequency("missing") == 0
        assert "school" in inv and "missing" not in inv

    def test_vocabulary_counts(self):
        net = toy_figure1()
        inv = InvertedIndex(net)
        assert inv.vocabulary.count("museum") == 1


class TestFragmentKeywordIndex:
    def test_restriction_to_members(self):
        net = make_random_network(seed=44, num_objects=12, vocabulary=4)
        members = [n for n in net.nodes() if n % 2 == 0]
        fki = FragmentKeywordIndex(net, members)
        for kw in fki.local_keywords():
            for node in fki.local_nodes_with(kw):
                assert node in members
                assert kw in net.keywords(node)

    def test_union_over_fragments_covers_everything(self):
        net = make_random_network(seed=45, num_objects=12, vocabulary=4)
        half = net.num_nodes // 2
        a = FragmentKeywordIndex(net, range(half))
        b = FragmentKeywordIndex(net, range(half, net.num_nodes))
        inv = InvertedIndex(net)
        for kw in inv.keywords():
            combined = set(a.local_nodes_with(kw)) | set(b.local_nodes_with(kw))
            assert combined == set(inv.nodes_with(kw))

    def test_postings_round_trip(self):
        net = toy_figure1()
        fki = FragmentKeywordIndex(net, net.nodes())
        clone = FragmentKeywordIndex.from_postings(fki.to_postings())
        assert clone.to_postings() == fki.to_postings()
        assert len(clone) == len(fki)


class TestZipfSampler:
    def test_validation(self):
        with pytest.raises(DisksError):
            ZipfSampler(0)
        with pytest.raises(DisksError):
            ZipfSampler(5, s=-1.0)

    def test_probabilities_sum_to_one(self):
        z = ZipfSampler(20, 1.2)
        assert sum(z.probability(r) for r in range(20)) == pytest.approx(1.0)
        assert z.probability(-1) == 0.0
        assert z.probability(20) == 0.0

    def test_skew_orders_ranks(self):
        z = ZipfSampler(10, 1.0)
        probs = [z.probability(r) for r in range(10)]
        assert probs == sorted(probs, reverse=True)

    def test_uniform_when_exponent_zero(self):
        z = ZipfSampler(4, 0.0)
        assert z.probability(0) == pytest.approx(z.probability(3))

    def test_empirical_skew(self):
        z = ZipfSampler(50, 1.0)
        rng = random.Random(1)
        counts = Counter(z.sample(rng) for _ in range(5000))
        assert counts[0] > counts.get(25, 0)
        assert counts[0] > counts.get(49, 0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(1, 100))
    def test_samples_in_range(self, seed, n):
        z = ZipfSampler(n, 1.0)
        rng = random.Random(seed)
        for rank in z.sample_many(rng, 50):
            assert 0 <= rank < n


class TestClusteredPlacer:
    def test_deterministic(self):
        cfg = PlacementConfig(vocabulary_size=30, seed=7)
        a = ClusteredKeywordPlacer(cfg, (0, 0, 10, 10))
        b = ClusteredKeywordPlacer(cfg, (0, 0, 10, 10))
        positions = [(1.0, 2.0), (5.0, 5.0), (9.0, 1.0)]
        assert a.place_all(positions) == b.place_all(positions)

    def test_keyword_count_bounds(self):
        cfg = PlacementConfig(vocabulary_size=30, min_keywords=2, max_keywords=3, seed=1)
        placer = ClusteredKeywordPlacer(cfg, (0, 0, 10, 10))
        for kws in placer.place_all([(i * 0.5, i * 0.5) for i in range(40)]):
            assert 1 <= len(kws) <= 3  # duplicates may shrink the set below min

    def test_keyword_names_are_canonical(self):
        cfg = PlacementConfig(vocabulary_size=10, seed=2)
        placer = ClusteredKeywordPlacer(cfg, (0, 0, 1, 1))
        for kws in placer.place_all([(0.5, 0.5)] * 10):
            for kw in kws:
                assert kw.startswith("kw")
                assert 0 <= int(kw[2:]) < 10

    def test_spatial_correlation(self):
        """Nearby objects share more keywords than far-apart ones."""
        cfg = PlacementConfig(
            vocabulary_size=400, num_clusters=2, cluster_affinity=0.95, topic_size=8, seed=3
        )
        placer = ClusteredKeywordPlacer(cfg, (0, 0, 100, 100))
        centre_a = placer._centres[0]
        centre_b = placer._centres[1]
        near_a = [placer.keywords_for(centre_a) for _ in range(30)]
        near_b = [placer.keywords_for(centre_b) for _ in range(30)]
        vocab_a = set().union(*near_a)
        vocab_b = set().union(*near_b)
        overlap = len(vocab_a & vocab_b)
        assert overlap < min(len(vocab_a), len(vocab_b))

    def test_invalid_configs(self):
        with pytest.raises(DisksError):
            PlacementConfig(vocabulary_size=0)
        with pytest.raises(DisksError):
            PlacementConfig(cluster_affinity=1.5)
        with pytest.raises(DisksError):
            PlacementConfig(min_keywords=0)
        with pytest.raises(DisksError):
            ClusteredKeywordPlacer(PlacementConfig(), (5, 5, 0, 0))
