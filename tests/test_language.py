"""Tests for the text query language."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import DisksEngine, EngineConfig
from repro.baselines import CentralizedEvaluator
from repro.core import KeywordSource, NodeSource, parse_query, QueryParseError, sgkq
from repro.core.dfunction import SetOp
from repro.partition import BfsPartitioner

from helpers import make_random_network


class TestParsing:
    def test_simple_and_chain(self):
        query = parse_query("NEAR(supermarket, 5) AND NEAR(gym, 5) AND NEAR(hospital, 5)")
        assert [t.source.keyword for t in query.terms] == [
            "supermarket", "gym", "hospital"
        ]
        assert all(t.radius == 5.0 for t in query.terms)
        # Equivalent to the sgkq constructor's expression.
        reference = sgkq(["supermarket", "gym", "hospital"], 5.0)
        sets = [{1, 2}, {2, 3}, {2}]
        assert query.expression.evaluate(sets) == reference.expression.evaluate(sets)

    def test_has_is_zero_radius(self):
        query = parse_query('HAS("shopping mall")')
        assert query.terms[0].radius == 0.0
        assert query.terms[0].source == KeywordSource("shopping mall")

    def test_not_is_subtraction(self):
        query = parse_query('HAS(mall) NOT NEAR(pizza, 2)')
        assert query.expression.evaluate([{1, 2}, {2}]) == {1}

    def test_within_node_source(self):
        query = parse_query("WITHIN(4 OF #17) AND HAS(museum)")
        assert query.terms[0].source == NodeSource(17)
        assert query.terms[0].radius == 4.0

    def test_parentheses_change_grouping(self):
        flat = parse_query("NEAR(a, 1) AND NEAR(b, 1) OR NEAR(c, 1)")
        grouped = parse_query("NEAR(a, 1) AND (NEAR(b, 1) OR NEAR(c, 1))")
        sets = [{1}, {9}, {1}]
        assert flat.expression.evaluate(sets) == {1, 9} or flat.expression.evaluate(sets) == {1}
        assert grouped.expression.evaluate(sets) == {1}

    def test_quoted_keywords_with_spaces_and_escapes(self):
        query = parse_query('NEAR("pizza shop", 1.5) AND NEAR("say \\"hi\\"", 2)')
        assert query.terms[0].source.keyword == "pizza shop"
        assert query.terms[1].source.keyword == 'say "hi"'

    def test_duplicate_terms_deduplicated(self):
        query = parse_query("NEAR(a, 1) AND (NEAR(b, 2) OR NEAR(a, 1))")
        assert len(query.terms) == 2  # NEAR(a,1) registered once

    def test_float_radius(self):
        assert parse_query("NEAR(cafe, 0.75)").terms[0].radius == 0.75

    def test_case_insensitive_operators(self):
        query = parse_query("near(a, 1) and has(b)")
        assert len(query.terms) == 2
        assert query.expression.op is SetOp.INTERSECT

    def test_label_is_source_text(self):
        assert parse_query(" HAS(x) ").label == "HAS(x)"


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "NEAR(a)",
            "NEAR(a, )",
            "NEAR(, 1)",
            "NEAR(a, 1",
            "HAS()",
            "WITHIN(1 OF 17)",      # missing '#'
            "WITHIN(1 OF #x)",
            "NEAR(a, 1) AND",
            "AND NEAR(a, 1)",
            "NEAR(a, 1) NEAR(b, 1)",
            "NEAR(#1.5, 1)",
            "!!",
            "(NEAR(a, 1)",
        ],
    )
    def test_malformed_queries_raise(self, bad):
        with pytest.raises(QueryParseError):
            parse_query(bad)

    def test_error_carries_position(self):
        with pytest.raises(QueryParseError) as excinfo:
            parse_query("NEAR(a, 1) ??")
        assert excinfo.value.position == 11
        assert "^" in str(excinfo.value)


class TestEndToEnd:
    def test_parsed_query_matches_constructed(self):
        net = make_random_network(seed=77, num_junctions=25, num_objects=12, vocabulary=4)
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=3,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=BfsPartitioner(seed=7),
            ),
        )
        kws = sorted(net.all_keywords())[:2]
        parsed = parse_query(f"NEAR({kws[0]}, 4) AND NEAR({kws[1]}, 4)")
        constructed = sgkq(kws, 4.0)
        assert engine.results(parsed) == engine.results(constructed)

    def test_parsed_query_matches_oracle_with_grouping(self):
        net = make_random_network(seed=78, num_junctions=25, num_objects=12, vocabulary=5)
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=3,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=BfsPartitioner(seed=8),
            ),
        )
        kws = sorted(net.all_keywords())[:3]
        text = f"(NEAR({kws[0]}, 3) OR NEAR({kws[1]}, 3)) NOT NEAR({kws[2]}, 1)"
        query = parse_query(text)
        assert engine.results(query) == CentralizedEvaluator(net).results(query)


class TestFuzz:
    @settings(max_examples=40, deadline=None)
    @given(st.text(max_size=40))
    def test_never_crashes_unexpectedly(self, text):
        """Arbitrary input either parses or raises QueryParseError."""
        try:
            parse_query(text)
        except QueryParseError:
            pass
