"""The semantic result cache wired into the serving layer.

Every test drives a real process-backed :class:`PipelinedCluster`
through ``serve_in_thread`` with ``ServeConfig(cache=True)`` — the
exact production wiring — and checks that cached answers (exact *and*
subsumption-served) are bit-identical to an independent
:class:`SimulatedCluster` reference, on both the NDJSON and binary
wire protocols.
"""

from __future__ import annotations

import math

import pytest

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments, parse_query
from repro.dist import SimulatedCluster
from repro.live import AddKeyword, EpochManager
from repro.partition import BfsPartitioner
from repro.serve import (
    BinaryServeClient,
    MetricsRegistry,
    PipelinedCluster,
    ServeClient,
    ServeConfig,
    serve_in_thread,
)

from helpers import make_random_network


def build_state(seed: int = 650):
    net = make_random_network(seed=seed, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=6).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, partition, fragments, indexes


@pytest.fixture()
def deployment():
    """(server, manager, metrics) — cache on, updater wired to the cluster.

    Function-scoped: :meth:`EpochManager.apply` mutates the network in
    place, so deployments cannot be shared across tests.
    """
    net, partition, fragments, indexes = build_state()
    cluster = PipelinedCluster.start(fragments, indexes, num_machines=2)
    manager = EpochManager(
        network=net,
        partition=partition,
        fragments=list(fragments),
        indexes=list(indexes),
    )
    manager.subscribe(
        lambda state, delta: cluster.apply_updates(state.epoch, list(delta.values()))
    )
    metrics = MetricsRegistry()
    try:
        with serve_in_thread(
            cluster, ServeConfig(max_inflight=16, cache=True), metrics, updater=manager
        ) as server:
            yield server, manager, metrics
    finally:
        cluster.shutdown()


def reference_answers(manager, expressions):
    """From-scratch answers on the manager's *current* epoch state."""
    state = manager.state
    reference = SimulatedCluster.from_fragments(
        list(state.fragments), list(state.indexes)
    )
    return {
        expression: set(reference.execute(parse_query(expression)).result_nodes)
        for expression in expressions
    }


EXPRESSIONS = [
    "NEAR(w0, 2) AND NEAR(w1, 2)",
    "HAS(w2) OR NEAR(w3, 1)",
    "NEAR(w0, 5) NOT NEAR(w2, 1)",
    "NEAR(w1, 4)",
    "NEAR(w0, 6) AND NEAR(w1, 6)",
]


class TestCachedServing:
    def test_repeat_and_commuted_queries_hit_on_both_protocols(self, deployment):
        server, manager, _metrics = deployment
        expected = reference_answers(manager, EXPRESSIONS)
        with ServeClient(server.host, server.port) as ndjson, BinaryServeClient(
            server.host, server.port
        ) as binary:
            for expression in EXPRESSIONS:  # misses: populate
                reply = ndjson.query(expression)
                assert reply["ok"], reply
                assert set(reply["nodes"]) == expected[expression]
            for expression in EXPRESSIONS:  # exact hits, NDJSON
                assert set(ndjson.query(expression)["nodes"]) == expected[expression]
            for expression in EXPRESSIONS:  # exact hits, binary wire
                assert set(binary.query(expression)["nodes"]) == expected[expression]
            # Commuted form canonicalizes onto the same key.
            commuted = ndjson.query("NEAR(w1, 2) AND NEAR(w0, 2)")
            assert set(commuted["nodes"]) == expected["NEAR(w0, 2) AND NEAR(w1, 2)"]
            cache = ndjson.stats()["result_cache"]
        assert cache["misses"] == len(EXPRESSIONS)
        assert cache["hits"] >= 2 * len(EXPRESSIONS) + 1
        assert cache["entries"] == len(EXPRESSIONS)

    def test_subsumption_served_answers_are_exact(self, deployment):
        server, manager, _metrics = deployment
        wide = "NEAR(w0, 6) OR NEAR(w1, 6)"
        narrow = "NEAR(w1, 2) OR NEAR(w0, 2)"
        expected = reference_answers(manager, [wide, narrow])
        with ServeClient(server.host, server.port) as client:
            assert set(client.query(wide)["nodes"]) == expected[wide]
            assert set(client.query(narrow)["nodes"]) == expected[narrow]
            cache = client.stats()["result_cache"]
        assert cache["subsumption_hits"] == 1
        assert cache["entries"] == 1  # the narrow answer was served, not stored

    def test_stats_sections_identical_on_both_protocols(self, deployment):
        server, _manager, _metrics = deployment
        with ServeClient(server.host, server.port) as ndjson, BinaryServeClient(
            server.host, server.port
        ) as binary:
            ndjson.query(EXPRESSIONS[0])
            a, b = ndjson.stats(), binary.stats()
        for snapshot in (a, b):
            assert set(snapshot["coverage_cache"]) == {"hits", "misses", "skipped"}
            for value in snapshot["coverage_cache"].values():
                assert isinstance(value, int)
            cache = snapshot["result_cache"]
            assert cache["entries"] == 1 and cache["epoch"] == 0
        assert a["coverage_cache"] == b["coverage_cache"]
        assert a["result_cache"] == b["result_cache"]

    def test_prometheus_exposition_carries_cache_series(self, deployment):
        server, _manager, _metrics = deployment
        with ServeClient(server.host, server.port) as client:
            client.query(EXPRESSIONS[0])
            client.query(EXPRESSIONS[0])
            text = client.metrics_text()
        for series in ("cache_hits", "cache_misses", "cache_entries", "cache_bytes"):
            assert f"repro_{series}" in text, series

    def test_update_invalidates_and_tracks_rebuild(self, deployment):
        server, manager, _metrics = deployment
        expression = "NEAR(w0, 1)"
        network = manager.state.network
        reference_before = reference_answers(manager, [expression])[expression]
        # An object outside the current answer: adding w0 to it must
        # visibly change the served result — proving the cached entry
        # did not survive the swap.
        target = next(
            node
            for node in network.nodes()
            if network.is_object(node) and node not in reference_before
        )
        with ServeClient(server.host, server.port) as client:
            before = set(client.query(expression)["nodes"])
            assert before == reference_answers(manager, [expression])[expression]
            reply = client.update([AddKeyword(target, "w0")])
            assert reply["ok"] and reply["epoch"] == 1
            after = set(client.query(expression)["nodes"])
            cache = client.stats()["result_cache"]
        # The update landed before the second query was served...
        assert after == reference_answers(manager, [expression])[expression]
        assert target in after and target not in before
        # ...because the swap evicted the entry rather than serving it.
        assert cache["invalidations"] >= 1
        assert cache["epoch"] == 1

    def test_cache_off_replies_are_identical(self, deployment):
        server, manager, _metrics = deployment
        expected = reference_answers(manager, EXPRESSIONS)
        with ServeClient(server.host, server.port) as client:
            cached = {e: set(client.query(e)["nodes"]) for e in EXPRESSIONS}
            cached_again = {e: set(client.query(e)["nodes"]) for e in EXPRESSIONS}
        assert cached == expected and cached_again == expected


class TestClusterStatsRoundTrip:
    def test_pipelined_coverage_cache_stats(self):
        _net, _partition, fragments, indexes = build_state(seed=707)
        with PipelinedCluster.start(fragments, indexes, num_machines=2) as cluster:
            cluster.execute(parse_query("NEAR(w0, 3)"))
            totals = cluster.coverage_cache_stats()
        assert set(totals) == {"hits", "misses", "skipped"}
        for value in totals.values():
            assert isinstance(value, int) and value >= 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
