"""The headline invariant: distributed evaluation == centralized ground truth.

For random networks, random partitions, every partitioner, both query
types, varying radiuses (below and at ``maxR``) and D-function operator
mixes, the union of per-fragment NPD results must equal the whole-graph
answer computed from Definition 4 directly.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import DisksEngine, EngineConfig, rkq, sgkq
from repro.baselines import BSPQueryEvaluator, CentralizedEvaluator
from repro.core import CoverageTerm, KeywordSource, QClassQuery, SetOp
from repro.core.npd import DLNodePolicy
from repro.partition import (
    BfsPartitioner,
    MultilevelPartitioner,
    Partition,
    RandomPartitioner,
)

from helpers import make_random_network, oracle_coverage, random_partition_assignment

PROPERTY_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_engine(net, k, seed, *, max_radius=math.inf, partitioner=None):
    return DisksEngine.build(
        net,
        EngineConfig(
            num_fragments=k,
            lambda_factor=None,
            max_radius=max_radius,
            partitioner=partitioner or BfsPartitioner(seed=seed),
        ),
    )


class TestSGKQMatchesOracle:
    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 5000),
        k=st.integers(1, 5),
        radius=st.floats(min_value=0.0, max_value=8.0),
        num_kw=st.integers(1, 3),
    )
    def test_random_networks_random_partitions(self, seed, k, radius, num_kw):
        net = make_random_network(seed=seed, num_junctions=18, num_objects=9, vocabulary=4)
        rng = random.Random(seed + 1)
        assignment = random_partition_assignment(seed + 2, net.num_nodes, k)
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=k,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=_FixedPartition(assignment, k),
            ),
        )
        vocab = sorted(net.all_keywords())
        keywords = rng.sample(vocab, min(num_kw, len(vocab)))
        query = sgkq(keywords, radius)
        expected = CentralizedEvaluator(net).results(query)
        assert engine.results(query) == expected

    @PROPERTY_SETTINGS
    @given(seed=st.integers(0, 5000), radius=st.floats(min_value=0.5, max_value=6.0))
    def test_truncated_index_still_exact_within_maxr(self, seed, radius):
        """With maxR = radius the pruned index must stay exact at r = radius."""
        net = make_random_network(seed=seed, num_junctions=18, num_objects=9, vocabulary=4)
        engine = build_engine(net, 3, seed, max_radius=radius)
        vocab = sorted(net.all_keywords())
        query = sgkq(vocab[:2], radius)
        assert engine.results(query) == CentralizedEvaluator(net).results(query)

    @pytest.mark.parametrize(
        "partitioner_factory",
        [
            lambda: RandomPartitioner(seed=3),
            lambda: BfsPartitioner(seed=3),
            lambda: MultilevelPartitioner(seed=3),
        ],
    )
    def test_partitioner_independence(self, partitioner_factory):
        net = make_random_network(seed=333, num_junctions=30, num_objects=15, vocabulary=5)
        engine = build_engine(net, 4, 3, partitioner=partitioner_factory())
        oracle = CentralizedEvaluator(net)
        for radius in (1.0, 3.0, 6.0):
            query = sgkq(["w0", "w1"], radius)
            assert engine.results(query) == oracle.results(query)

    def test_fragment_count_independence(self):
        net = make_random_network(seed=444, num_junctions=30, num_objects=15, vocabulary=5)
        query = sgkq(["w0", "w2"], 4.0)
        expected = CentralizedEvaluator(net).results(query)
        for k in (1, 2, 3, 5, 8):
            assert build_engine(net, k, 9).results(query) == expected


class _FixedPartition:
    """Partitioner returning a pre-drawn assignment (for property tests)."""

    def __init__(self, assignment, k):
        self._assignment = assignment
        self._k = k

    def partition(self, network, k):
        assert k == self._k
        return Partition.from_assignment(self._assignment, k)


class TestRKQMatchesOracle:
    @PROPERTY_SETTINGS
    @given(seed=st.integers(0, 5000), radius=st.floats(min_value=0.0, max_value=8.0))
    def test_rkq_from_objects(self, seed, radius):
        net = make_random_network(seed=seed, num_junctions=18, num_objects=9, vocabulary=4)
        rng = random.Random(seed)
        location = rng.choice(list(net.object_nodes()))
        keyword = rng.choice(sorted(net.all_keywords()))
        query = rkq(location, [keyword], radius)
        engine = build_engine(net, 3, seed)
        assert engine.results(query) == CentralizedEvaluator(net).results(query)

    def test_rkq_location_in_every_fragment_position(self):
        """The location being inside vs outside a fragment both work."""
        net = make_random_network(seed=17, num_junctions=20, num_objects=10, vocabulary=4)
        engine = build_engine(net, 4, 17)
        oracle = CentralizedEvaluator(net)
        for location in list(net.object_nodes())[:6]:
            query = rkq(location, ["w0"], 5.0)
            assert engine.results(query) == oracle.results(query)

    def test_rkq_junction_location_with_all_policy(self):
        net = make_random_network(seed=18, num_junctions=20, num_objects=8, vocabulary=4)
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=3,
                lambda_factor=None,
                max_radius=math.inf,
                node_policy=DLNodePolicy.ALL,
                partitioner=BfsPartitioner(seed=18),
            ),
        )
        junction = next(n for n in net.nodes() if not net.is_object(n))
        query = rkq(junction, ["w1"], 6.0)
        assert engine.results(query) == CentralizedEvaluator(net).results(query)


class TestDFunctionMixesMatchOracle:
    @PROPERTY_SETTINGS
    @given(seed=st.integers(0, 3000), ops_seed=st.integers(0, 1000))
    def test_random_operator_chains(self, seed, ops_seed):
        net = make_random_network(seed=seed, num_junctions=18, num_objects=9, vocabulary=5)
        rng = random.Random(ops_seed)
        vocab = sorted(net.all_keywords())
        arity = min(4, len(vocab))
        keywords = rng.sample(vocab, arity)
        terms = tuple(
            CoverageTerm(KeywordSource(kw), rng.uniform(0.0, 6.0)) for kw in keywords
        )
        ops = [
            rng.choice([SetOp.UNION, SetOp.INTERSECT, SetOp.SUBTRACT])
            for _ in range(arity - 1)
        ]
        query = QClassQuery.from_chain(terms, ops, "random-mix")
        engine = build_engine(net, 3, seed)
        assert engine.results(query) == CentralizedEvaluator(net).results(query)


class TestDirectedNetworks:
    @PROPERTY_SETTINGS
    @given(seed=st.integers(0, 2000), radius=st.floats(min_value=0.5, max_value=6.0))
    def test_directed_sgkq(self, seed, radius):
        net = make_random_network(
            seed=seed, num_junctions=15, num_objects=8, vocabulary=4, directed=True
        )
        engine = build_engine(net, 3, seed)
        query = sgkq(sorted(net.all_keywords())[:2], radius)
        assert engine.results(query) == CentralizedEvaluator(net).results(query)


class TestCoverageAgainstDefinition:
    @PROPERTY_SETTINGS
    @given(seed=st.integers(0, 3000), radius=st.floats(min_value=0.0, max_value=7.0))
    def test_single_coverage_is_definition4(self, seed, radius):
        """R(ω, r) from the engine equals {A : d(A, ω) ≤ r} by brute force."""
        net = make_random_network(seed=seed, num_junctions=16, num_objects=8, vocabulary=3)
        engine = build_engine(net, 3, seed)
        keyword = sorted(net.all_keywords())[0]
        query = sgkq([keyword], radius)
        expected = oracle_coverage(net, query.terms[0])
        assert set(engine.results(query)) == expected


class TestAgainstBSPBaseline:
    def test_three_way_agreement(self):
        net = make_random_network(seed=91, num_junctions=25, num_objects=12, vocabulary=5)
        engine = build_engine(net, 4, 91)
        bsp = BSPQueryEvaluator(net, engine.partition)
        central = CentralizedEvaluator(net)
        for radius in (1.0, 4.0):
            for keywords in (["w0"], ["w1", "w3"]):
                query = sgkq(keywords, radius)
                a = engine.results(query)
                b = central.results(query)
                c = bsp.execute(query).result_nodes
                assert a == b == c
