"""Frontend hardening: idempotency keys, rate limits, multi-frontend scale-out.

The group-wide contract: two copies of an update carrying the same
idempotency key apply exactly once even when they land on *different*
frontends of the same cluster, and a rate-limited client is throttled
across the whole group.
"""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.ha import (
    FrontendGuard,
    HACluster,
    IdempotencyIndex,
    TokenBucketLimiter,
    frontend_group,
)
from repro.live import AddKeyword, EpochManager
from repro.partition import BfsPartitioner
from repro.serve import ServeClient, ServeConfig

from helpers import make_random_network


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=650, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=6).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, partition, fragments, indexes


class TestIdempotencyIndex:
    def test_owner_then_replay(self):
        index = IdempotencyIndex()
        owner, cached = index.begin("k1")
        assert owner and cached is None
        index.finish("k1", {"ok": True, "epoch": 3})
        owner, cached = index.begin("k1")
        assert not owner
        assert cached == {"ok": True, "epoch": 3}
        stats = index.stats()
        assert stats["owned"] == 1
        assert stats["deduped"] == 1
        assert stats["inflight"] == 0

    def test_concurrent_duplicates_get_the_owners_reply(self):
        index = IdempotencyIndex()
        assert index.begin("k")[0]
        results: list[tuple[bool, dict | None]] = []

        def _dup() -> None:
            results.append(index.begin("k", timeout_seconds=10))

        threads = [threading.Thread(target=_dup) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let the duplicates block on the owner
        index.finish("k", {"ok": True, "applied": 7})
        for thread in threads:
            thread.join()
        assert all(not owner and cached == {"ok": True, "applied": 7}
                   for owner, cached in results)

    def test_failed_owner_clears_the_key_for_retry(self):
        index = IdempotencyIndex()
        assert index.begin("k")[0]
        index.fail("k")
        owner, cached = index.begin("k")
        assert owner and cached is None

    def test_replay_window_is_lru_bounded(self):
        index = IdempotencyIndex(capacity=2)
        for i in range(3):
            assert index.begin(f"k{i}")[0]
            index.finish(f"k{i}", {"i": i})
        assert index.begin("k0")[0]  # evicted: the retry owns it again
        assert index.begin("k2") == (False, {"i": 2})


class TestTokenBucketLimiter:
    def test_burst_then_throttle_then_refill(self):
        limiter = TokenBucketLimiter(rate=1000.0, burst=2.0)
        assert limiter.allow("c") and limiter.allow("c")
        assert not limiter.allow("c")
        assert limiter.stats()["limited"] == 1
        time.sleep(0.01)  # ~10 tokens refilled, capped at burst
        assert limiter.allow("c")

    def test_clients_are_isolated(self):
        limiter = TokenBucketLimiter(rate=0.001, burst=1.0)
        assert limiter.allow("a")
        assert not limiter.allow("a")
        assert limiter.allow("b")

    def test_bucket_table_is_lru_bounded(self):
        limiter = TokenBucketLimiter(rate=0.001, burst=1.0, max_clients=2)
        assert limiter.allow("a")
        assert limiter.allow("b")
        assert limiter.allow("c")  # evicts a's drained bucket
        assert limiter.allow("a")  # a comes back with a fresh burst
        assert limiter.stats()["clients"] == 2

    def test_rejects_nonsense_config(self):
        with pytest.raises(ValueError, match="positive"):
            TokenBucketLimiter(rate=0.0, burst=1.0)


class TestFrontendGuard:
    def test_no_limiter_means_unlimited(self):
        guard = FrontendGuard()
        assert all(guard.allow("c") for _ in range(100))
        assert "rate_limiter" not in guard.stats()

    def test_limiter_is_exposed_in_stats(self):
        guard = FrontendGuard(rate_limiter=TokenBucketLimiter(rate=1.0, burst=1.0))
        assert guard.allow("c")
        assert not guard.allow("c")
        assert guard.stats()["rate_limiter"]["limited"] == 1


class TestMultiFrontend:
    def test_duplicate_update_across_frontends_applies_once(self, built):
        net, partition, fragments, indexes = built
        manager = EpochManager(
            network=net,
            partition=partition,
            fragments=list(fragments),
            indexes=list(indexes),
        )
        node = sorted(net.object_nodes())[0]
        ops = [AddKeyword(node, "dupkw")]
        with HACluster.start(
            fragments, indexes, num_machines=3, replication_factor=2
        ) as cluster:
            manager.bind_cluster(cluster)
            with frontend_group(
                cluster, count=2, config=ServeConfig(port=0), updater=manager
            ) as frontends:
                assert len({front.port for front in frontends}) == 2
                replies = []
                for front in frontends:  # same key, different frontends
                    with ServeClient(front.host, front.port) as client:
                        replies.append(
                            client.update(ops, request_id="u", idempotency_key="once")
                        )
                assert all(reply["ok"] for reply in replies)
                assert manager.epoch == 1  # applied exactly once
                assert [reply.get("deduped", False) for reply in replies] == [
                    False,
                    True,
                ]
                assert replies[1]["epoch"] == replies[0]["epoch"]
                assert frontends[0].guard.idempotency.stats()["deduped"] == 1

    def test_rate_limit_spans_the_group(self, built):
        _net, _partition, fragments, indexes = built
        guard = FrontendGuard(
            rate_limiter=TokenBucketLimiter(rate=0.001, burst=2.0)
        )
        with HACluster.start(
            fragments, indexes, num_machines=2, replication_factor=2
        ) as cluster:
            with frontend_group(
                cluster, count=2, config=ServeConfig(port=0), guard=guard
            ) as frontends:
                expression = "HAS(w0)"
                outcomes = []
                for front in frontends:
                    with ServeClient(front.host, front.port) as client:
                        reply = client.request(
                            {"id": 1, "q": expression, "client": "tenant-a"}
                        )
                        outcomes.append((reply.get("ok"), reply.get("error")))
                # Burst of 2 is spent by the two frontends; the third
                # request is throttled no matter which frontend it hits.
                with ServeClient(frontends[0].host, frontends[0].port) as client:
                    reply = client.request(
                        {"id": 2, "q": expression, "client": "tenant-a"}
                    )
                assert outcomes == [(True, None), (True, None)]
                assert reply["ok"] is False
                assert reply["error"] == "rate-limited"
                # An unrelated client is untouched.
                with ServeClient(frontends[1].host, frontends[1].port) as client:
                    assert client.request(
                        {"id": 3, "q": expression, "client": "tenant-b"}
                    )["ok"]
