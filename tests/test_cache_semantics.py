"""Semantic result cache: canonicalization, subsumption, invalidation.

The load-bearing guarantee is *bit-identical answers cache-on vs
cache-off* across arbitrary interleavings of queries and live updates —
proven here by a hypothesis differential driving a real
:class:`EpochManager` against fragment runtimes, with the cache wired
exactly as the server wires it (refresh subscriber first, cache swap
subscriber last).  Subsumption-served answers flow through the same
assertion.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import SemanticResultCache, canonicalize, subsumes
from repro.cache.keys import filter_answer
from repro.core import (
    FragmentRuntime,
    NPDBuildConfig,
    build_all_indexes,
    build_fragments,
    execute_fragment_task,
    parse_query,
)
from repro.core.executor import execute_fragment_task_explained
from repro.live import AddKeyword, EpochManager, RemoveKeyword, SetEdgeWeight
from repro.partition import BfsPartitioner

from helpers import make_random_network

KEYWORDS = ["w0", "w1", "w2", "w3"]
RADII = [0.0, 1.0, 2.0, 3.0, 5.0]


def build_deployment(seed: int = 911):
    """Fresh (network, manager, runtimes) — ``EpochManager.apply``
    mutates the network in place, so nothing here may be shared."""
    net = make_random_network(seed=seed, num_junctions=20, num_objects=10, vocabulary=4)
    partition = BfsPartitioner(seed=3).partition(net, 3)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    manager = EpochManager(
        network=net,
        partition=partition,
        fragments=list(fragments),
        indexes=list(indexes),
    )
    runtimes = {
        fragment.fragment_id: FragmentRuntime(fragment, index)
        for fragment, index in zip(fragments, indexes)
    }

    def refresh(state, delta):
        for fragment_id, (fragment, index) in delta.items():
            runtimes[fragment_id].refresh(fragment, index)

    manager.subscribe(refresh)
    return net, manager, runtimes


class Harness:
    """The server's cache discipline, without sockets.

    Miss → explained evaluation over every runtime → admit; the cache
    rides the manager's swap feed like the server's does.
    """

    def __init__(self, manager, runtimes, **cache_kwargs):
        self.runtimes = runtimes
        self.cache = SemanticResultCache(**cache_kwargs)
        self.cache.attach(manager)

    def direct(self, query):
        nodes = set()
        for runtime in self.runtimes.values():
            nodes |= execute_fragment_task(runtime, query).local_result
        return frozenset(nodes)

    def cached(self, query):
        hit, ticket = self.cache.probe(query)
        if hit is not None:
            return hit.nodes, hit.kind
        partials, nodes = {}, set()
        for runtime in self.runtimes.values():
            result, explanations = execute_fragment_task_explained(runtime, query)
            partials[result.fragment_id] = explanations
            nodes |= result.local_result
        answer = frozenset(nodes)
        self.cache.admit(ticket, answer, partials)
        return answer, "miss"


def random_update(rng: random.Random, network):
    """One valid-in-sequence update op against the current network."""
    objects = [n for n in network.nodes() if network.is_object(n)]
    kind = rng.choice(["add", "remove", "edge", "edge"])
    if kind == "add":
        candidates = [
            (node, kw)
            for node in objects
            for kw in KEYWORDS
            if kw not in network.keywords(node)
        ]
        if candidates:
            node, kw = rng.choice(candidates)
            return AddKeyword(node, kw)
    if kind == "remove":
        candidates = [
            (node, kw) for node in objects for kw in network.keywords(node)
        ]
        if candidates:
            node, kw = rng.choice(candidates)
            return RemoveKeyword(node, kw)
    u, v, _w = rng.choice(list(network.edges()))
    return SetEdgeWeight(u, v, rng.choice([0.5, 1.0, 1.5, 2.5, 4.0]))


def random_expression(rng: random.Random) -> str:
    a, b, c = rng.sample(KEYWORDS, 3)
    ra, rb, rc = (rng.choice(RADII) for _ in range(3))
    shape = rng.randrange(6)
    if shape == 0:
        return f"NEAR({a}, {ra:g})"
    if shape == 1:
        return f"NEAR({a}, {ra:g}) AND NEAR({b}, {rb:g})"
    if shape == 2:
        return f"NEAR({a}, {ra:g}) OR NEAR({b}, {rb:g})"
    if shape == 3:
        return f"NEAR({a}, {ra:g}) NOT NEAR({b}, {rb:g})"
    if shape == 4:
        return f"NEAR({a}, {ra:g}) AND NEAR({b}, {rb:g}) AND NEAR({c}, {rc:g})"
    return f"HAS({a}) AND NEAR({b}, {rb:g})"


class TestCanonicalization:
    def test_commuted_and_shares_key(self):
        a = canonicalize(parse_query("NEAR(w0, 3) AND NEAR(w1, 5)"))
        b = canonicalize(parse_query("NEAR(w1, 5) AND NEAR(w0, 3)"))
        assert a.key == b.key

    def test_commuted_or_and_nested_chains_share_key(self):
        a = canonicalize(parse_query("NEAR(w0, 1) OR NEAR(w1, 2) OR NEAR(w2, 3)"))
        b = canonicalize(parse_query("NEAR(w2, 3) OR NEAR(w0, 1) OR NEAR(w1, 2)"))
        assert a.key == b.key

    def test_radii_distinguish_keys_but_not_shapes(self):
        a = canonicalize(parse_query("NEAR(w0, 3) AND NEAR(w1, 5)"))
        b = canonicalize(parse_query("NEAR(w0, 2) AND NEAR(w1, 5)"))
        assert a.key != b.key
        assert a.shape == b.shape

    def test_subtract_is_not_commutative(self):
        a = canonicalize(parse_query("NEAR(w0, 3) NOT NEAR(w1, 3)"))
        b = canonicalize(parse_query("NEAR(w1, 3) NOT NEAR(w0, 3)"))
        assert a.key != b.key

    def test_polarity_flips_under_subtract_and_double_negation(self):
        single = canonicalize(parse_query("NEAR(w0, 3) NOT NEAR(w1, 3)"))
        assert set(zip(single.polarities, single.radii)) == {(1, 3.0), (-1, 3.0)}
        double = canonicalize(
            parse_query("NEAR(w0, 3) NOT (NEAR(w1, 3) NOT NEAR(w2, 3))")
        )
        # w2 sits under two subtractions: positive again.
        assert sorted(double.polarities) == [-1, 1, 1]

    def test_keywords_and_radius_dependence(self):
        c = canonicalize(parse_query("HAS(w0) AND HAS(w1)"))
        assert c.keywords == {"w0", "w1"}
        assert not c.radius_dependent
        assert canonicalize(parse_query("NEAR(w0, 2)")).radius_dependent


class TestSubsumptionPredicate:
    def test_positive_radii_may_shrink(self):
        big = canonicalize(parse_query("NEAR(w0, 5) AND NEAR(w1, 4)"))
        small = canonicalize(parse_query("NEAR(w0, 3) AND NEAR(w1, 4)"))
        assert subsumes(big, small)
        assert not subsumes(small, big)

    def test_negative_radii_must_match_exactly(self):
        entry = canonicalize(parse_query("NEAR(w0, 5) NOT NEAR(w1, 4)"))
        shrunk = canonicalize(parse_query("NEAR(w0, 5) NOT NEAR(w1, 2)"))
        grown = canonicalize(parse_query("NEAR(w0, 5) NOT NEAR(w1, 5)"))
        same_neg = canonicalize(parse_query("NEAR(w0, 3) NOT NEAR(w1, 4)"))
        assert not subsumes(entry, shrunk)
        assert not subsumes(entry, grown)
        assert subsumes(entry, same_neg)

    def test_different_shapes_never_subsume(self):
        a = canonicalize(parse_query("NEAR(w0, 5) AND NEAR(w1, 5)"))
        b = canonicalize(parse_query("NEAR(w0, 3) OR NEAR(w1, 3)"))
        assert not subsumes(a, b)

    def test_filter_answer_is_exact_on_a_real_deployment(self):
        _net, manager, runtimes = build_deployment()
        harness = Harness(manager, runtimes)
        entry_query = parse_query("NEAR(w0, 5) OR NEAR(w1, 5)")
        probe_query = parse_query("NEAR(w1, 2) OR NEAR(w0, 2)")
        answer, kind = harness.cached(entry_query)
        assert kind == "miss"
        entry = canonicalize(entry_query)
        probe = canonicalize(probe_query)
        assert subsumes(entry, probe)
        merged: dict[int, tuple] = {}
        for runtime in runtimes.values():
            _result, explanations = execute_fragment_task_explained(
                runtime, entry_query
            )
            merged.update(explanations)
        assert filter_answer(entry, probe, merged) == harness.direct(probe_query)


class TestStoreMechanics:
    def _synthetic_admit(self, cache, expression, nodes=frozenset({1})):
        query = parse_query(expression)
        hit, ticket = cache.probe(query)
        assert hit is None
        partials = {0: {node: (1.0,) * len(query.terms) for node in nodes}}
        return cache.admit(ticket, frozenset(nodes), partials)

    def test_lru_evicts_oldest_entry(self):
        cache = SemanticResultCache(max_entries=2)
        for keyword in ("w0", "w1"):
            assert self._synthetic_admit(cache, f"NEAR({keyword}, 1)")
        assert cache.probe(parse_query("NEAR(w0, 1)"))[0] is not None  # refresh w0
        assert self._synthetic_admit(cache, "NEAR(w2, 1)")  # evicts w1
        stats = cache.stats()
        assert stats["entries"] == 2 and stats["evictions"] == 1
        assert cache.probe(parse_query("NEAR(w1, 1)"))[0] is None
        assert cache.probe(parse_query("NEAR(w0, 1)"))[0] is not None

    def test_byte_budget_bounds_the_store(self):
        cache = SemanticResultCache(max_entries=100, max_bytes=2000)
        for keyword in KEYWORDS:
            self._synthetic_admit(cache, f"NEAR({keyword}, 1)", frozenset(range(20)))
        stats = cache.stats()
        assert stats["bytes"] <= 2000
        assert stats["evictions"] > 0

    def test_oversize_entries_are_never_admitted(self):
        cache = SemanticResultCache(max_bytes=300)
        assert not self._synthetic_admit(cache, "NEAR(w0, 1)", frozenset(range(50)))
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["oversize_rejects"] == 1

    def test_stale_ticket_is_rejected_after_a_swap(self):
        _net, manager, runtimes = build_deployment()
        harness = Harness(manager, runtimes)
        query = parse_query("NEAR(w0, 3)")
        _hit, ticket = harness.cache.probe(query)
        assert ticket is not None
        target = next(
            node
            for node in manager.state.network.nodes()
            if manager.state.network.is_object(node)
            and "w3" not in manager.state.network.keywords(node)
        )
        manager.apply([AddKeyword(target, "w3")])  # epoch moves mid-flight
        assert not harness.cache.admit(ticket, frozenset(), {})
        assert harness.cache.stats()["stale_rejects"] == 1
        assert harness.cache.stats()["epoch"] == 1

    def test_keyword_churn_evicts_only_matching_entries(self):
        _net, manager, runtimes = build_deployment()
        harness = Harness(manager, runtimes)
        harness.cached(parse_query("NEAR(w0, 2)"))
        harness.cached(parse_query("NEAR(w1, 2)"))
        network = manager.state.network
        target = next(
            node
            for node in network.nodes()
            if network.is_object(node) and "w0" not in network.keywords(node)
        )
        manager.apply([AddKeyword(target, "w0")])
        stats = harness.cache.stats()
        assert stats["invalidations"] == 1  # only the w0 entry
        assert harness.cache.probe(parse_query("NEAR(w1, 2)"))[0] is not None
        assert harness.cache.probe(parse_query("NEAR(w0, 2)"))[0] is None

    def test_topology_change_spares_pure_has_entries(self):
        _net, manager, runtimes = build_deployment()
        harness = Harness(manager, runtimes)
        harness.cached(parse_query("HAS(w0)"))
        harness.cached(parse_query("NEAR(w0, 3)"))
        u, v, _w = next(iter(manager.state.network.edges()))
        manager.apply([SetEdgeWeight(u, v, 2.5)])
        assert harness.cache.probe(parse_query("HAS(w0)"))[0] is not None
        assert harness.cache.probe(parse_query("NEAR(w0, 3)"))[0] is None
        # ... and the surviving HAS entry is still correct.
        answer, kind = harness.cached(parse_query("HAS(w0)"))
        assert kind == "exact"
        assert answer == harness.direct(parse_query("HAS(w0)"))

    def test_subsumption_can_be_disabled(self):
        _net, manager, runtimes = build_deployment()
        harness = Harness(manager, runtimes, subsumption=False)
        harness.cached(parse_query("NEAR(w0, 5)"))
        answer, kind = harness.cached(parse_query("NEAR(w0, 2)"))
        assert kind == "miss"
        assert answer == harness.direct(parse_query("NEAR(w0, 2)"))


class TestDifferential:
    """cache-on ≡ cache-off over random query/update interleavings."""

    @settings(max_examples=110, deadline=None)
    @given(seed=st.integers(0, 10_000), data=st.data())
    def test_random_interleavings_are_bit_identical(self, seed, data):
        _net, manager, runtimes = build_deployment(seed=911)
        harness = Harness(manager, runtimes, max_entries=32)
        rng = random.Random(seed)
        steps = data.draw(st.lists(st.booleans(), min_size=8, max_size=24))
        for is_update in steps:
            if is_update:
                manager.apply([random_update(rng, manager.state.network)])
            else:
                query = parse_query(random_expression(rng))
                cached_answer, _kind = harness.cached(query)
                assert cached_answer == harness.direct(query)
        stats = harness.cache.stats()
        lookups = stats["hits"] + stats["subsumption_hits"] + stats["misses"]
        assert lookups == sum(1 for is_update in steps if not is_update)

    def test_seeded_interleavings_exercise_subsumption(self):
        """Deterministic sweep proving subsumption-served answers are
        compared too — radius ladders over repeated keyword pairs make
        subsumption hits certain."""
        total_subsumption = 0
        for seed in range(12):
            _net, manager, runtimes = build_deployment(seed=911)
            harness = Harness(manager, runtimes)
            rng = random.Random(seed)
            for step in range(30):
                if step % 7 == 6:
                    manager.apply([random_update(rng, manager.state.network)])
                    continue
                a, b = rng.sample(KEYWORDS[:3], 2)
                radius = rng.choice([5.0, 3.0, 2.0, 1.0])  # descending ladder
                op = rng.choice(["AND", "OR"])
                query = parse_query(f"NEAR({a}, {radius:g}) {op} NEAR({b}, 5)")
                cached_answer, _kind = harness.cached(query)
                assert cached_answer == harness.direct(query)
            total_subsumption += harness.cache.stats()["subsumption_hits"]
        assert total_subsumption > 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
