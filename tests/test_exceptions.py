"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import exceptions as exc


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            exc.GraphError,
            exc.NodeNotFoundError,
            exc.EdgeError,
            exc.DisconnectedGraphError,
            exc.PartitionError,
            exc.IndexBuildError,
            exc.IndexLookupError,
            exc.QueryError,
            exc.UnknownKeywordError,
            exc.RadiusExceededError,
            exc.StorageError,
            exc.CodecError,
            exc.ChecksumError,
            exc.ClusterError,
            exc.CommunicationViolationError,
        ],
    )
    def test_all_derive_from_disks_error(self, subclass):
        assert issubclass(subclass, exc.DisksError)

    def test_node_not_found_is_key_error(self):
        assert issubclass(exc.NodeNotFoundError, KeyError)
        err = exc.NodeNotFoundError(42)
        assert err.node_id == 42
        assert "42" in str(err)

    def test_unknown_keyword_carries_keyword(self):
        err = exc.UnknownKeywordError("pizza")
        assert err.keyword == "pizza"
        assert "pizza" in str(err)
        assert isinstance(err, exc.QueryError)

    def test_radius_exceeded_carries_values(self):
        err = exc.RadiusExceededError(10.0, 5.0)
        assert err.radius == 10.0
        assert err.max_radius == 5.0
        assert "bi-level" in str(err)

    def test_checksum_is_codec_is_storage(self):
        assert issubclass(exc.ChecksumError, exc.CodecError)
        assert issubclass(exc.CodecError, exc.StorageError)

    def test_communication_violation_is_cluster_error(self):
        assert issubclass(exc.CommunicationViolationError, exc.ClusterError)
