"""Tests for the open-loop workload driver."""

from __future__ import annotations

import math

import pytest

from repro import DisksEngine, EngineConfig
from repro.exceptions import DisksError
from repro.partition import MultilevelPartitioner
from repro.workloads import WorkloadDriver, WorkloadReport, WorkloadSpec


@pytest.fixture(scope="module")
def engine(aus_tiny):
    return DisksEngine.build(
        aus_tiny.network,
        EngineConfig(
            num_fragments=4, lambda_factor=12.0, partitioner=MultilevelPartitioner(seed=1)
        ),
    )


class TestSpecValidation:
    def test_invalid_specs(self):
        with pytest.raises(DisksError):
            WorkloadSpec(num_queries=0)
        with pytest.raises(DisksError):
            WorkloadSpec(arrival_rate_qps=0)
        with pytest.raises(DisksError):
            WorkloadSpec(rkq_fraction=1.5)
        with pytest.raises(DisksError):
            WorkloadSpec(min_keywords=3, max_keywords=2)
        with pytest.raises(DisksError):
            WorkloadSpec(min_radius_fraction=0.0)
        with pytest.raises(DisksError):
            WorkloadSpec(min_radius_fraction=0.9, max_radius_fraction=0.5)


class TestGeneration:
    def test_stream_shape(self, engine):
        spec = WorkloadSpec(num_queries=12, rkq_fraction=0.5, seed=3)
        stream = WorkloadDriver(engine, spec).generate()
        assert len(stream) == 12
        arrivals = [t.arrival_seconds for t in stream]
        assert arrivals == sorted(arrivals)
        assert all(t.query.max_radius <= engine.max_radius for t in stream)
        kinds = {bool(t.query.node_sources()) for t in stream}
        assert kinds == {True, False}  # both RKQs and SGKQs appear

    def test_deterministic(self, engine):
        spec = WorkloadSpec(num_queries=6, seed=9)
        a = WorkloadDriver(engine, spec).generate()
        b = WorkloadDriver(engine, spec).generate()
        assert [t.arrival_seconds for t in a] == [t.arrival_seconds for t in b]
        assert [str(t.query) for t in a] == [str(t.query) for t in b]

    def test_pure_sgkq_stream(self, engine):
        spec = WorkloadSpec(num_queries=8, rkq_fraction=0.0, seed=1)
        stream = WorkloadDriver(engine, spec).generate()
        assert all(not t.query.node_sources() for t in stream)


class TestReplay:
    def test_report_consistency(self, engine):
        spec = WorkloadSpec(num_queries=10, arrival_rate_qps=50.0, seed=4)
        report = WorkloadDriver(engine, spec).replay()
        assert len(report.latencies_seconds) == 10
        assert all(lat > 0 for lat in report.latencies_seconds)
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.total_busy_seconds > 0
        assert report.throughput_qps > 0

    def test_lower_offered_load_means_lower_latency(self, engine):
        relaxed = WorkloadDriver(
            engine, WorkloadSpec(num_queries=10, arrival_rate_qps=1.0, seed=5)
        ).replay()
        slammed = WorkloadDriver(
            engine, WorkloadSpec(num_queries=10, arrival_rate_qps=10_000.0, seed=5)
        ).replay()
        assert slammed.p95_ms >= relaxed.p95_ms

    def test_percentile_validation(self):
        report = WorkloadReport((0.1, 0.2), 1.0, 1.0, False, 0.3)
        with pytest.raises(DisksError):
            report.percentile(1.5)
        assert report.percentile(0.5) == 0.1
        assert report.percentile(1.0) == 0.2

    def test_empty_stream_rejected(self, engine):
        with pytest.raises(DisksError):
            WorkloadDriver(engine).replay([])
