"""Cross-cutting invariants, including a stateful maintenance machine.

These properties tie together subsystems that the per-module tests
exercise in isolation:

* coverage monotonicity in the radius;
* result monotonicity under keyword addition (more carriers, larger or
  equal coverage);
* a hypothesis state machine driving random add/remove keyword
  sequences through :class:`KeywordMaintainer`, checking after every
  step that the patched deployment answers exactly like a centralized
  evaluation of the *current* network.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro import DisksEngine, EngineConfig, sgkq
from repro.baselines import CentralizedEvaluator
from repro.core import (
    CoverageTerm,
    KeywordMaintainer,
    KeywordSource,
    NPDBuildConfig,
    QClassQuery,
    SetOp,
    build_all_indexes,
    build_fragments,
)
from repro.core.coverage import FragmentRuntime
from repro.core.executor import execute_fragment_task
from repro.partition import BfsPartitioner

from helpers import make_random_network


class TestCoverageMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 800),
        r1=st.floats(min_value=0.0, max_value=4.0),
        r2=st.floats(min_value=0.0, max_value=4.0),
    )
    def test_radius_monotone(self, seed, r1, r2):
        if r1 > r2:
            r1, r2 = r2, r1
        net = make_random_network(seed=seed, num_junctions=15, num_objects=8, vocabulary=3)
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=3,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=BfsPartitioner(seed=seed),
            ),
        )
        keyword = sorted(net.all_keywords())[0]
        small = engine.results(sgkq([keyword], r1))
        large = engine.results(sgkq([keyword], r2))
        assert small <= large

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 800), radius=st.floats(min_value=0.5, max_value=4.0))
    def test_intersection_shrinks(self, seed, radius):
        """Adding an AND term never grows the result (anti-monotone)."""
        net = make_random_network(seed=seed, num_junctions=15, num_objects=8, vocabulary=4)
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=2,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=BfsPartitioner(seed=seed),
            ),
        )
        keywords = sorted(net.all_keywords())
        one = engine.results(sgkq(keywords[:1], radius))
        two = engine.results(sgkq(keywords[:2], radius))
        assert two <= one

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 800), radius=st.floats(min_value=0.5, max_value=4.0))
    def test_union_grows(self, seed, radius):
        net = make_random_network(seed=seed, num_junctions=15, num_objects=8, vocabulary=4)
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=2,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=BfsPartitioner(seed=seed),
            ),
        )
        keywords = sorted(net.all_keywords())
        base = engine.results(sgkq(keywords[:1], radius))
        terms = tuple(CoverageTerm(KeywordSource(kw), radius) for kw in keywords[:2])
        union = engine.results(QClassQuery.from_chain(terms, [SetOp.UNION]))
        assert base <= union


class MaintenanceMachine(RuleBasedStateMachine):
    """Random keyword churn must never desynchronise index and network."""

    @initialize(seed=st.integers(0, 200))
    def setup(self, seed):
        net = make_random_network(
            seed=seed, num_junctions=12, num_objects=6, vocabulary=3
        )
        partition = BfsPartitioner(seed=seed).partition(net, 2)
        fragments = build_fragments(net, partition)
        indexes, _ = build_all_indexes(
            net, fragments, NPDBuildConfig(max_radius=math.inf)
        )
        self.maintainer = KeywordMaintainer(net, partition, fragments, list(indexes))
        self.rng = random.Random(seed + 7)
        self.extra_vocab = ["m0", "m1", "m2"]

    def _objects(self):
        return list(self.maintainer.network.object_nodes())

    @rule(choice=st.integers(0, 10_000))
    def add_keyword(self, choice):
        rng = random.Random(choice)
        node = rng.choice(self._objects())
        keyword = rng.choice(self.extra_vocab)
        self.maintainer.add_keyword(node, keyword)

    @rule(choice=st.integers(0, 10_000))
    def remove_keyword(self, choice):
        rng = random.Random(choice)
        net = self.maintainer.network
        carriers = [
            (node, kw)
            for node in net.object_nodes()
            for kw in net.keywords(node)
        ]
        if not carriers:
            return
        node, keyword = rng.choice(carriers)
        self.maintainer.remove_keyword(node, keyword)

    @invariant()
    def answers_match_fresh_oracle(self):
        if not hasattr(self, "maintainer"):
            return
        net = self.maintainer.network
        vocab = sorted(net.all_keywords())
        if not vocab:
            return
        keyword = vocab[0]
        query = sgkq([keyword], 3.0)
        merged: set[int] = set()
        for fragment, index in zip(self.maintainer.fragments, self.maintainer.indexes):
            runtime = FragmentRuntime(fragment, index)
            merged |= execute_fragment_task(runtime, query).local_result
        oracle = CentralizedEvaluator(net, strict_keywords=False)
        assert frozenset(merged) == oracle.results(query)


MaintenanceMachine.TestCase.settings = settings(
    max_examples=6,
    stateful_step_count=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
TestMaintenanceStateMachine = MaintenanceMachine.TestCase
