"""Tests for the centralized evaluator and the BSP strawman."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import BSPEngine, BSPQueryEvaluator, BSPStats, CentralizedEvaluator
from repro.core import CoverageTerm, KeywordSource, NodeSource, rkq, sgkq
from repro.exceptions import ClusterError, NodeNotFoundError, UnknownKeywordError
from repro.partition import BfsPartitioner, Partition, RandomPartitioner
from repro.workloads import toy_figure1

from helpers import make_random_network, oracle_coverage


class TestCentralized:
    def test_figure1_examples(self):
        evaluator = CentralizedEvaluator(toy_figure1())
        assert evaluator.results(sgkq(["museum", "school"], 3.0)) == {1, 4}
        assert evaluator.results(rkq(1, ["museum"], 4.0)) == {3}

    def test_keyword_coverage_matches_definition(self):
        net = make_random_network(seed=5, num_junctions=15, num_objects=8, vocabulary=3)
        evaluator = CentralizedEvaluator(net)
        for kw in sorted(net.all_keywords()):
            term = CoverageTerm(KeywordSource(kw), 3.0)
            assert evaluator.coverage(term) == oracle_coverage(net, term)

    def test_node_coverage(self):
        net = toy_figure1()
        evaluator = CentralizedEvaluator(net)
        assert evaluator.coverage(CoverageTerm(NodeSource(4), 2.0)) == {0, 1, 3, 4}

    def test_unknown_keyword_strict(self):
        evaluator = CentralizedEvaluator(toy_figure1())
        with pytest.raises(UnknownKeywordError):
            evaluator.results(sgkq(["nothing"], 1.0))

    def test_unknown_keyword_lenient(self):
        evaluator = CentralizedEvaluator(toy_figure1(), strict_keywords=False)
        assert evaluator.results(sgkq(["nothing"], 1.0)) == frozenset()

    def test_bad_node(self):
        evaluator = CentralizedEvaluator(toy_figure1())
        with pytest.raises(NodeNotFoundError):
            evaluator.results(rkq(99, ["museum"], 1.0))

    def test_result_includes_timing_and_sizes(self):
        evaluator = CentralizedEvaluator(toy_figure1())
        result = evaluator.execute(sgkq(["school", "museum"], 3.0))
        assert result.wall_seconds >= 0
        assert len(result.coverage_sizes) == 2


class TestBSPEngine:
    def test_requires_matching_assignment(self):
        net = toy_figure1()
        with pytest.raises(ClusterError):
            BSPEngine(net, [0, 0])

    def test_sssp_semantics(self):
        net = toy_figure1()
        engine: BSPEngine[float, float] = BSPEngine(net, [0] * net.num_nodes)

        def compute(node, value, messages):
            best = min(messages) if messages else 0.0
            if value is not None and value <= best:
                return None, ()
            return best, [(v, best + w) for v, w in net.neighbors(node)]

        values, stats = engine.run({0: 0.0}, compute)
        assert values == {0: 0.0, 4: 2.0, 1: 3.0, 3: 4.0, 2: 7.0}
        assert stats.supersteps >= 3
        assert stats.cross_worker_messages == 0  # single worker

    def test_superstep_cap(self):
        net = toy_figure1()
        engine: BSPEngine[int, int] = BSPEngine(net, [0] * net.num_nodes)

        def forever(node, value, messages):
            return 0, [(0, 1)]  # ping-pong forever

        with pytest.raises(ClusterError):
            engine.run({0: 0}, forever, max_supersteps=5)

    def test_stats_merge(self):
        a = BSPStats(supersteps=2, total_messages=5, cross_worker_messages=1)
        b = BSPStats(supersteps=3, total_messages=2, cross_worker_messages=2)
        merged = a.merged_with(b)
        assert merged.supersteps == 5
        assert merged.total_messages == 7
        assert merged.cross_worker_messages == 3


class TestBSPQueries:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), radius=st.floats(min_value=0.0, max_value=6.0))
    def test_matches_centralized(self, seed, radius):
        net = make_random_network(seed=seed, num_junctions=16, num_objects=8, vocabulary=4)
        partition = BfsPartitioner(seed=seed).partition(net, 3)
        bsp = BSPQueryEvaluator(net, partition)
        central = CentralizedEvaluator(net)
        query = sgkq(sorted(net.all_keywords())[:2], radius)
        assert bsp.execute(query).result_nodes == central.results(query)

    def test_rkq_matches(self):
        net = make_random_network(seed=7, num_junctions=16, num_objects=8, vocabulary=4)
        partition = BfsPartitioner(seed=7).partition(net, 3)
        bsp = BSPQueryEvaluator(net, partition)
        central = CentralizedEvaluator(net)
        location = next(iter(net.object_nodes()))
        query = rkq(location, ["w0"], 4.0)
        assert bsp.execute(query).result_nodes == central.results(query)

    def test_cross_worker_traffic_grows_with_cut(self):
        """More cut edges => more BSP communication (the §2.3 point)."""
        net = make_random_network(seed=9, num_junctions=30, num_objects=15, vocabulary=4)
        query = sgkq(["w0", "w1"], 5.0)
        good = BSPQueryEvaluator(net, BfsPartitioner(seed=1).partition(net, 4))
        bad = BSPQueryEvaluator(net, RandomPartitioner(seed=1).partition(net, 4))
        good_stats = good.execute(query).stats
        bad_stats = bad.execute(query).stats
        assert bad_stats.cross_worker_messages > good_stats.cross_worker_messages

    def test_single_fragment_has_zero_cross_traffic(self):
        net = make_random_network(seed=10, num_junctions=15, num_objects=8)
        partition = Partition.from_assignment([0] * net.num_nodes, 1)
        bsp = BSPQueryEvaluator(net, partition)
        result = bsp.execute(sgkq(["w0"], 4.0))
        assert result.stats.cross_worker_messages == 0
        assert result.stats.total_messages > 0

    def test_empty_keyword_coverage(self):
        net = make_random_network(seed=11, num_junctions=12, num_objects=6)
        partition = BfsPartitioner(seed=1).partition(net, 2)
        bsp = BSPQueryEvaluator(net, partition)
        coverage, stats = bsp.coverage(CoverageTerm(KeywordSource("missing"), 3.0))
        assert coverage == set()
        assert stats.supersteps == 0
