"""Tests for NPD-index integrity validation."""

from __future__ import annotations

import dataclasses
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    NPDBuildConfig,
    build_all_indexes,
    build_fragments,
    validate_index,
)
from repro.core.npd import DLNodePolicy, NPDIndex, PortalDistance
from repro.exceptions import IndexBuildError
from repro.partition import BfsPartitioner

from helpers import make_random_network


def build_case(seed: int = 900, max_radius: float = 5.0):
    net = make_random_network(seed=seed, num_junctions=20, num_objects=10, vocabulary=4)
    partition = BfsPartitioner(seed=seed).partition(net, 3)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=max_radius))
    return net, fragments, indexes


class TestValidIndexesPass:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_freshly_built_indexes_validate(self, seed):
        net, fragments, indexes = build_case(seed=seed)
        for fragment, index in zip(fragments, indexes):
            validate_index(fragment, index, network=net)

    def test_infinite_radius_indexes_validate(self):
        net, fragments, indexes = build_case(max_radius=math.inf)
        for fragment, index in zip(fragments, indexes):
            validate_index(fragment, index, network=net)

    def test_round_tripped_files_validate(self, tmp_path):
        from repro.storage import read_index_file, write_index_file

        net, fragments, indexes = build_case()
        path = tmp_path / "x.npd"
        write_index_file(indexes[0], path)
        validate_index(fragments[0], read_index_file(path), network=net)


class TestCorruptionDetected:
    def _fresh(self):
        return build_case(seed=901)

    def test_wrong_fragment_pairing(self):
        _net, fragments, indexes = self._fresh()
        with pytest.raises(IndexBuildError):
            validate_index(fragments[0], indexes[1])

    def test_foreign_shortcut_endpoint(self):
        net, fragments, indexes = self._fresh()
        index = indexes[0]
        outsider = next(iter(fragments[1].members))
        insider = next(iter(fragments[0].portals))
        index.shortcuts[(min(outsider, insider), max(outsider, insider))] = 1.0
        with pytest.raises(IndexBuildError):
            validate_index(fragments[0], index)

    def test_overweight_shortcut(self):
        net, fragments, indexes = self._fresh()
        index = indexes[0]
        if not index.shortcuts:
            pytest.skip("no shortcuts in this fixture")
        key = next(iter(index.shortcuts))
        index.shortcuts[key] = index.max_radius * 2
        with pytest.raises(IndexBuildError):
            validate_index(fragments[0], index)

    def test_unsorted_dl_entry(self):
        net, fragments, indexes = self._fresh()
        index = indexes[0]
        keyword = next(iter(index.keyword_entries))
        pairs = index.keyword_entries[keyword]
        if len(pairs) < 2:
            portals = sorted(fragments[0].portals)[:2]
            pairs = (
                PortalDistance(portals[0], 2.0),
                PortalDistance(portals[-1], 1.0),
            )
        else:
            pairs = tuple(reversed(pairs))
        index.keyword_entries[keyword] = pairs
        with pytest.raises(IndexBuildError):
            validate_index(fragments[0], index)

    def test_non_portal_dl_reference(self):
        net, fragments, indexes = self._fresh()
        index = indexes[0]
        non_portal = next(
            n for n in fragments[0].members if n not in fragments[0].portals
        )
        index.keyword_entries["bogus"] = (PortalDistance(non_portal, 1.0),)
        with pytest.raises(IndexBuildError):
            validate_index(fragments[0], index)

    def test_node_entry_for_member(self):
        net, fragments, indexes = self._fresh()
        index = indexes[0]
        member_portal = next(iter(fragments[0].portals))
        index.node_entries[next(iter(fragments[0].members))] = (
            PortalDistance(member_portal, 1.0),
        )
        with pytest.raises(IndexBuildError):
            validate_index(fragments[0], index)

    def test_policy_none_with_node_entries(self):
        net, fragments, indexes = self._fresh()
        index = indexes[0]
        stripped = dataclasses.replace(index, node_policy=DLNodePolicy.NONE)
        if stripped.node_entries:
            with pytest.raises(IndexBuildError):
                validate_index(fragments[0], stripped)

    def test_tampered_distance_caught_by_spot_check(self):
        net, fragments, indexes = self._fresh()
        index = indexes[0]
        if not index.shortcuts:
            pytest.skip("no shortcuts in this fixture")
        key = next(iter(index.shortcuts))
        index.shortcuts[key] = index.shortcuts[key] * 0.5  # now an underestimate
        with pytest.raises(IndexBuildError):
            validate_index(fragments[0], index, network=net, spot_check_samples=1000)

    def test_structural_pass_without_network(self):
        """Spot checks are skipped without the network (worker-side mode)."""
        net, fragments, indexes = self._fresh()
        index = indexes[0]
        if not index.shortcuts:
            pytest.skip("no shortcuts in this fixture")
        key = next(iter(index.shortcuts))
        index.shortcuts[key] = index.shortcuts[key] * 0.5
        validate_index(fragments[0], index)  # structure alone cannot see it
