"""Unit and property tests for :class:`IndexedBinaryHeap`."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.search import IndexedBinaryHeap


class TestBasics:
    def test_push_pop_order(self):
        h: IndexedBinaryHeap[str] = IndexedBinaryHeap()
        h.push("a", 3.0)
        h.push("b", 1.0)
        h.push("c", 2.0)
        assert [h.pop() for _ in range(3)] == [("b", 1.0), ("c", 2.0), ("a", 3.0)]

    def test_len_bool_contains(self):
        h: IndexedBinaryHeap[int] = IndexedBinaryHeap()
        assert not h
        h.push(1, 5.0)
        assert h and len(h) == 1 and 1 in h and 2 not in h

    def test_duplicate_push_rejected(self):
        h: IndexedBinaryHeap[int] = IndexedBinaryHeap()
        h.push(1, 1.0)
        with pytest.raises(KeyError):
            h.push(1, 2.0)

    def test_peek_does_not_remove(self):
        h: IndexedBinaryHeap[int] = IndexedBinaryHeap()
        h.push(1, 1.0)
        assert h.peek() == (1, 1.0)
        assert len(h) == 1

    def test_empty_pop_and_peek(self):
        h: IndexedBinaryHeap[int] = IndexedBinaryHeap()
        with pytest.raises(IndexError):
            h.pop()
        with pytest.raises(IndexError):
            h.peek()

    def test_priority_lookup(self):
        h: IndexedBinaryHeap[str] = IndexedBinaryHeap()
        h.push("x", 4.5)
        assert h.priority("x") == 4.5
        with pytest.raises(KeyError):
            h.priority("y")

    def test_clear(self):
        h: IndexedBinaryHeap[int] = IndexedBinaryHeap()
        h.push(1, 1.0)
        h.clear()
        assert not h and 1 not in h


class TestUpdates:
    def test_decrease_key(self):
        h: IndexedBinaryHeap[str] = IndexedBinaryHeap()
        h.push("a", 5.0)
        h.push("b", 1.0)
        h.update("a", 0.5)
        assert h.pop() == ("a", 0.5)

    def test_increase_key(self):
        h: IndexedBinaryHeap[str] = IndexedBinaryHeap()
        h.push("a", 1.0)
        h.push("b", 2.0)
        h.update("a", 3.0)
        assert h.pop() == ("b", 2.0)

    def test_push_or_update(self):
        h: IndexedBinaryHeap[str] = IndexedBinaryHeap()
        h.push_or_update("a", 2.0)
        h.push_or_update("a", 1.0)
        assert h.pop() == ("a", 1.0)

    def test_decrease_only_lowers(self):
        h: IndexedBinaryHeap[str] = IndexedBinaryHeap()
        h.push("a", 2.0)
        assert not h.decrease("a", 3.0)
        assert h.priority("a") == 2.0
        assert h.decrease("a", 1.0)
        assert h.priority("a") == 1.0

    def test_decrease_inserts_missing(self):
        h: IndexedBinaryHeap[str] = IndexedBinaryHeap()
        assert h.decrease("new", 7.0)
        assert h.peek() == ("new", 7.0)

    def test_remove_middle(self):
        h: IndexedBinaryHeap[int] = IndexedBinaryHeap()
        for i, p in enumerate([5.0, 3.0, 8.0, 1.0, 4.0]):
            h.push(i, p)
        assert h.remove(0) == 5.0
        assert 0 not in h
        drained = [h.pop() for _ in range(len(h))]
        assert [p for _k, p in drained] == sorted(p for _k, p in drained)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=80))
    def test_heapsort_matches_sorted(self, priorities):
        h: IndexedBinaryHeap[int] = IndexedBinaryHeap()
        for i, p in enumerate(priorities):
            h.push(i, p)
        drained = [h.pop()[1] for _ in range(len(priorities))]
        assert drained == sorted(priorities)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), ops=st.integers(10, 150))
    def test_random_op_sequence_matches_reference(self, seed, ops):
        """Interleaved push/update/remove/pop must match a dict reference."""
        rng = random.Random(seed)
        h: IndexedBinaryHeap[int] = IndexedBinaryHeap()
        reference: dict[int, float] = {}
        next_key = 0
        for _ in range(ops):
            action = rng.random()
            if action < 0.45 or not reference:
                p = rng.uniform(0, 100)
                h.push(next_key, p)
                reference[next_key] = p
                next_key += 1
            elif action < 0.7:
                key = rng.choice(list(reference))
                p = rng.uniform(0, 100)
                h.update(key, p)
                reference[key] = p
            elif action < 0.85:
                key = rng.choice(list(reference))
                assert h.remove(key) == reference.pop(key)
            else:
                key, p = h.pop()
                assert p == min(reference.values())
                assert reference.pop(key) == p
        drained = [h.pop()[1] for _ in range(len(h))]
        assert drained == sorted(reference.values())
