"""Tests for the portal-minimising refinement pass."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import DisksEngine, EngineConfig, sgkq
from repro.baselines import CentralizedEvaluator
from repro.exceptions import PartitionError
from repro.graph import GeneratorConfig, generate_road_network
from repro.partition import (
    BfsPartitioner,
    MultilevelPartitioner,
    Partition,
    RandomPartitioner,
    evaluate_partition,
    refine_portals,
    validate_partition,
)

from helpers import make_random_network


class TestRefinePortals:
    def test_never_increases_portals(self, grid_network):
        for partitioner in (BfsPartitioner(seed=1), MultilevelPartitioner(seed=1)):
            before = partitioner.partition(grid_network, 6)
            after = refine_portals(grid_network, before)
            p_before = evaluate_partition(grid_network, before).total_portals
            p_after = evaluate_partition(grid_network, after).total_portals
            assert p_after <= p_before

    def test_improves_random_partition_substantially(self, grid_network):
        before = RandomPartitioner(seed=2).partition(grid_network, 4)
        after = refine_portals(grid_network, before, max_sweeps=8)
        p_before = evaluate_partition(grid_network, before).total_portals
        p_after = evaluate_partition(grid_network, after).total_portals
        assert p_after < p_before

    def test_result_is_valid_partition(self, grid_network):
        before = BfsPartitioner(seed=3).partition(grid_network, 5)
        after = refine_portals(grid_network, before)
        validate_partition(grid_network, after)
        assert after.num_fragments == 5

    def test_balance_respected(self, grid_network):
        before = MultilevelPartitioner(seed=4).partition(grid_network, 4)
        after = refine_portals(grid_network, before, balance_tolerance=0.1)
        quality = evaluate_partition(grid_network, after)
        assert quality.balance <= 1.1 + 1e-9 or quality.balance <= (
            evaluate_partition(grid_network, before).balance
        )

    def test_input_not_modified(self, grid_network):
        before = BfsPartitioner(seed=5).partition(grid_network, 4)
        snapshot = tuple(before.assignment)
        refine_portals(grid_network, before)
        assert before.assignment == snapshot

    def test_validation(self, grid_network):
        partition = BfsPartitioner(seed=1).partition(grid_network, 2)
        with pytest.raises(PartitionError):
            refine_portals(grid_network, partition, balance_tolerance=-1)

    def test_single_fragment_untouched(self, grid_network):
        partition = Partition.from_assignment([0] * grid_network.num_nodes, 1)
        after = refine_portals(grid_network, partition)
        assert after.assignment == partition.assignment

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 400), k=st.integers(2, 5))
    def test_property_valid_and_not_worse(self, seed, k):
        net = make_random_network(seed=seed, num_junctions=25, num_objects=10)
        before = BfsPartitioner(seed=seed).partition(net, k)
        after = refine_portals(net, before)
        validate_partition(net, after)
        assert (
            evaluate_partition(net, after).total_portals
            <= evaluate_partition(net, before).total_portals
        )

    def test_queries_stay_exact_after_refinement(self):
        """Refined partitions are just partitions: end-to-end exactness."""
        net = make_random_network(seed=808, num_junctions=30, num_objects=15, vocabulary=4)
        base = BfsPartitioner(seed=8).partition(net, 4)
        refined = refine_portals(net, base)

        class _Fixed:
            def partition(self, _net, k):
                assert k == refined.num_fragments
                return refined

        import math

        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=4,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=_Fixed(),
            ),
        )
        oracle = CentralizedEvaluator(net)
        query = sgkq(sorted(net.all_keywords())[:2], 4.0)
        assert engine.results(query) == oracle.results(query)

    def test_directed_mode(self):
        net = make_random_network(seed=809, num_junctions=20, num_objects=8, directed=True)
        before = BfsPartitioner(seed=9).partition(net, 3)
        after = refine_portals(net, before)
        validate_partition(net, after)
