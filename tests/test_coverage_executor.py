"""Tests for the fragment runtime, local coverage, and task executor."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    CoverageTerm,
    KeywordSource,
    NodeSource,
    NPDBuildConfig,
    build_all_indexes,
    build_fragments,
    sgkq,
)
from repro.core.coverage import (
    CoverageStats,
    FragmentRuntime,
    local_coverage,
    local_distance_map,
)
from repro.core.executor import execute_fragment_task
from repro.exceptions import QueryError, RadiusExceededError
from repro.partition import BfsPartitioner

from helpers import make_random_network, oracle_coverage, oracle_distances


@pytest.fixture()
def runtime_case():
    net = make_random_network(seed=55, num_junctions=20, num_objects=10, vocabulary=4)
    partition = BfsPartitioner(seed=5).partition(net, 3)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    runtimes = [FragmentRuntime(f, i) for f, i in zip(fragments, indexes)]
    return net, fragments, indexes, runtimes


class TestFragmentRuntime:
    def test_mismatched_pairing_rejected(self, runtime_case):
        _net, fragments, indexes, _runtimes = runtime_case
        with pytest.raises(QueryError):
            FragmentRuntime(fragments[0], indexes[1])

    def test_extended_adjacency_contains_shortcuts(self, runtime_case):
        _net, fragments, indexes, runtimes = runtime_case
        for fragment, index, runtime in zip(fragments, indexes, runtimes):
            for (u, v), w in index.shortcuts.items():
                assert (v, w) in runtime.adjacency(u)
                assert (u, w) in runtime.adjacency(v)  # undirected

    def test_extended_adjacency_contains_fragment_edges(self, runtime_case):
        _net, fragments, _indexes, runtimes = runtime_case
        for fragment, runtime in zip(fragments, runtimes):
            for node, edges in fragment.adjacency.items():
                for edge in edges:
                    assert edge in runtime.adjacency(node)

    def test_seeds_merge_local_and_dl(self, runtime_case):
        net, fragments, indexes, runtimes = runtime_case
        keyword = sorted(net.all_keywords())[0]
        for fragment, index, runtime in zip(fragments, indexes, runtimes):
            seeds = runtime.seeds_for(CoverageTerm(KeywordSource(keyword), 100.0))
            local_nodes = set(fragment.keyword_index.local_nodes_with(keyword))
            for node, dist in seeds.items():
                if node in local_nodes:
                    assert dist == 0.0
                else:
                    assert node in fragment.portals
                    assert dist > 0.0

    def test_node_source_inside_fragment(self, runtime_case):
        _net, fragments, _indexes, runtimes = runtime_case
        member = next(iter(fragments[0].members))
        seeds = runtimes[0].seeds_for(CoverageTerm(NodeSource(member), 10.0))
        assert seeds == {member: 0.0}


class TestLocalCoverage:
    def test_union_over_fragments_equals_definition(self, runtime_case):
        net, _fragments, _indexes, runtimes = runtime_case
        for keyword in sorted(net.all_keywords()):
            for radius in (0.0, 1.5, 4.0):
                term = CoverageTerm(KeywordSource(keyword), radius)
                merged: set[int] = set()
                for runtime in runtimes:
                    local = local_coverage(runtime, term)
                    assert local <= runtime.fragment.members
                    merged |= local
                assert merged == oracle_coverage(net, term)

    def test_distance_map_is_exact(self, runtime_case):
        net, _fragments, _indexes, runtimes = runtime_case
        keyword = sorted(net.all_keywords())[1]
        seeds = [n for n in net.nodes() if keyword in net.keywords(n)]
        oracle = oracle_distances(net, seeds, bound=5.0)
        term = CoverageTerm(KeywordSource(keyword), 5.0)
        for runtime in runtimes:
            for node, dist in local_distance_map(runtime, term).items():
                assert dist == pytest.approx(oracle[node])

    def test_zero_radius_is_containment(self, runtime_case):
        net, _fragments, _indexes, runtimes = runtime_case
        keyword = sorted(net.all_keywords())[0]
        term = CoverageTerm(KeywordSource(keyword), 0.0)
        merged: set[int] = set()
        for runtime in runtimes:
            merged |= local_coverage(runtime, term)
        assert merged == {n for n in net.nodes() if keyword in net.keywords(n)}

    def test_radius_beyond_maxr_raises(self):
        net = make_random_network(seed=60, num_junctions=12, num_objects=6)
        partition = BfsPartitioner(seed=1).partition(net, 2)
        fragments = build_fragments(net, partition)
        indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=2.0))
        runtime = FragmentRuntime(fragments[0], indexes[0])
        with pytest.raises(RadiusExceededError):
            local_coverage(runtime, CoverageTerm(KeywordSource("w0"), 3.0))

    def test_stats_counters(self, runtime_case):
        net, _fragments, _indexes, runtimes = runtime_case
        keyword = sorted(net.all_keywords())[0]
        stats = CoverageStats()
        total = 0
        for runtime in runtimes:
            total += len(
                local_coverage(runtime, CoverageTerm(KeywordSource(keyword), 3.0), stats)
            )
        assert stats.settled_nodes == total
        assert stats.seeds_local + stats.seeds_from_dl > 0

    def test_unknown_keyword_has_empty_coverage(self, runtime_case):
        _net, _fragments, _indexes, runtimes = runtime_case
        term = CoverageTerm(KeywordSource("no-such-keyword"), 3.0)
        for runtime in runtimes:
            assert local_coverage(runtime, term) == set()


class TestExecutor:
    def test_task_result_fields(self, runtime_case):
        net, _fragments, _indexes, runtimes = runtime_case
        query = sgkq(sorted(net.all_keywords())[:2], 3.0)
        result = execute_fragment_task(runtimes[0], query)
        assert result.fragment_id == 0
        assert len(result.coverage_sizes) == 2
        assert result.wall_seconds >= 0.0
        assert result.local_result <= runtimes[0].fragment.members

    def test_local_result_is_dfunction_of_local_coverages(self, runtime_case):
        net, _fragments, _indexes, runtimes = runtime_case
        query = sgkq(sorted(net.all_keywords())[:2], 3.0)
        for runtime in runtimes:
            result = execute_fragment_task(runtime, query)
            coverages = [local_coverage(runtime, t) for t in query.terms]
            assert result.local_result == query.expression.evaluate(coverages)
            assert result.coverage_sizes == tuple(len(c) for c in coverages)
