"""Unit tests for ReplicatedCluster bookkeeping.

``tests/test_replication_cache.py`` covers the end-to-end behaviour
(oracle parity, failure survival, load balance).  This file pins the
bookkeeping underneath: the chained-declustering layout itself,
fail/restore round-trips, placement reaction to restores, and the
ledger/latency accounting of one execution.
"""

from __future__ import annotations

import math

import pytest

from repro import sgkq
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.dist import ReplicatedCluster
from repro.dist.network import COORDINATOR_ID
from repro.exceptions import ClusterError
from repro.partition import BfsPartitioner

from helpers import make_random_network

NUM_MACHINES = 4
REPLICATION = 2


@pytest.fixture(scope="module")
def built():
    net = make_random_network(seed=810, num_junctions=24, num_objects=12, vocabulary=4)
    partition = BfsPartitioner(seed=9).partition(net, 4)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return net, fragments, indexes


def make_cluster(built, *, replication: int = REPLICATION) -> ReplicatedCluster:
    _net, fragments, indexes = built
    return ReplicatedCluster.from_fragments(
        fragments,
        indexes,
        num_machines=NUM_MACHINES,
        replication_factor=replication,
    )


class TestLayout:
    def test_chained_declustering_placement_is_exact(self, built):
        """Fragment i lands on machines i%m, (i+1)%m, ... — no more, no less."""
        cluster = make_cluster(built)
        _net, fragments, _indexes = built
        for i in range(len(fragments)):
            expected = sorted((i + j) % NUM_MACHINES for j in range(REPLICATION))
            assert sorted(cluster.replicas_of(i)) == expected

    def test_replication_factor_one_is_the_paper_deployment(self, built):
        cluster = make_cluster(built, replication=1)
        _net, fragments, _indexes = built
        for i in range(len(fragments)):
            assert cluster.replicas_of(i) == [i % NUM_MACHINES]

    def test_replicas_of_unknown_fragment_is_empty(self, built):
        assert make_cluster(built).replicas_of(999) == []

    def test_every_machine_holds_its_share(self, built):
        """r copies of f fragments over m machines: f*r runtimes total."""
        cluster = make_cluster(built)
        _net, fragments, _indexes = built
        total = sum(len(runtimes) for runtimes in cluster.machines.values())
        assert total == len(fragments) * REPLICATION


class TestFailRestore:
    def test_restore_round_trip(self, built):
        cluster = make_cluster(built)
        assert cluster.failed_machines == frozenset()
        cluster.fail_machine(1)
        assert cluster.failed_machines == frozenset({1})
        cluster.restore_machine(1)
        assert cluster.failed_machines == frozenset()

    def test_fail_and_restore_are_idempotent(self, built):
        cluster = make_cluster(built)
        cluster.fail_machine(2)
        cluster.fail_machine(2)
        assert cluster.failed_machines == frozenset({2})
        cluster.restore_machine(2)
        cluster.restore_machine(2)  # restoring a healthy machine is a no-op
        assert cluster.failed_machines == frozenset()

    def test_unknown_machine_rejected_on_both_paths(self, built):
        cluster = make_cluster(built)
        with pytest.raises(ClusterError, match="no machine 99"):
            cluster.fail_machine(99)
        with pytest.raises(ClusterError, match="no machine 99"):
            cluster.restore_machine(99)

    def test_restore_returns_machine_to_the_placement_pool(self, built):
        net, _fragments, _indexes = built
        keyword = sorted(net.all_keywords())[0]
        query = sgkq([keyword], 4.0)
        cluster = make_cluster(built)
        cluster.fail_machine(0)
        healthy_before = cluster.execute(query).result_nodes
        assert 0 not in cluster.execute(query).chosen_machines.values()
        cluster.restore_machine(0)
        after = cluster.execute(query)
        assert 0 in after.chosen_machines.values()
        assert after.result_nodes == healthy_before

    def test_failing_all_machines_raises(self, built):
        cluster = make_cluster(built)
        for machine_id in range(NUM_MACHINES):
            cluster.fail_machine(machine_id)
        query = sgkq(sorted(built[0].all_keywords())[:1], 2.0)
        with pytest.raises(ClusterError, match="every machine has failed"):
            cluster.execute(query)


class TestAccounting:
    def test_ledger_records_two_messages_per_fragment(self, built):
        net, fragments, _indexes = built
        query = sgkq(sorted(net.all_keywords())[:2], 3.0)
        cluster = make_cluster(built)
        cluster.execute(query)
        assert len(cluster.ledger.transfers) == 2 * len(fragments)
        by_kind = cluster.ledger.bytes_by_kind()
        assert set(by_kind) == {"task", "result"}
        assert cluster.ledger.worker_to_worker_bytes() == 0
        # A second execution appends, never resets.
        cluster.execute(query)
        assert len(cluster.ledger.transfers) == 4 * len(fragments)

    def test_all_traffic_touches_the_coordinator(self, built):
        net, _fragments, _indexes = built
        cluster = make_cluster(built)
        cluster.execute(sgkq(sorted(net.all_keywords())[:1], 3.0))
        for transfer in cluster.ledger.transfers:
            assert COORDINATOR_ID in (transfer.sender, transfer.receiver)

    def test_response_seconds_is_makespan_plus_comm(self, built):
        net, _fragments, _indexes = built
        cluster = make_cluster(built)
        response = cluster.execute(sgkq(sorted(net.all_keywords())[:1], 3.0))
        assert response.machine_seconds
        # The makespan bound: at least the slowest machine's busy time.
        assert response.response_seconds >= max(response.machine_seconds.values())
        # machine_seconds only covers machines that actually served work.
        assert set(response.machine_seconds) == set(
            response.chosen_machines.values()
        )

    def test_chosen_machines_cover_every_fragment_once(self, built):
        net, fragments, _indexes = built
        cluster = make_cluster(built)
        response = cluster.execute(sgkq(sorted(net.all_keywords())[:1], 3.0))
        assert sorted(response.chosen_machines) == list(range(len(fragments)))
        for fragment_id, machine_id in response.chosen_machines.items():
            assert machine_id in cluster.replicas_of(fragment_id)
