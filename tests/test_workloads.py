"""Tests for datasets and the §6 query generator."""

from __future__ import annotations

import pytest

from repro.core.dfunction import SetOp
from repro.core.queries import KeywordSource, NodeSource
from repro.exceptions import DisksError, QueryError
from repro.workloads import (
    DATASET_PRESETS,
    QueryGenConfig,
    QueryGenerator,
    build_dataset,
    load_dataset,
    toy_figure1,
)


class TestToyFigure1:
    def test_structure(self):
        net = toy_figure1()
        assert net.num_nodes == 5
        assert net.keywords(0) == {"school"}
        assert net.keywords(3) == {"museum"}
        assert not net.is_object(4)

    def test_example3_coverage(self):
        """Example 3: R(school, 3) = {A, B, E}."""
        from repro.baselines import CentralizedEvaluator
        from repro.core import CoverageTerm, KeywordSource

        cov = CentralizedEvaluator(toy_figure1()).coverage(
            CoverageTerm(KeywordSource("school"), 3.0)
        )
        assert cov == {0, 1, 4}


class TestDatasetPresets:
    def test_tiny_presets_build_and_connect(self, aus_tiny):
        assert aus_tiny.stats.connected
        assert aus_tiny.stats.num_objects > 0
        assert aus_tiny.stats.num_keywords > 10

    def test_memoised(self):
        assert load_dataset("aus_tiny") is load_dataset("aus_tiny")

    def test_unknown_preset(self):
        with pytest.raises(DisksError):
            load_dataset("mars_mini")

    def test_object_ratio_matches_table1_shape(self):
        """bri presets keep the ~8% object ratio; aus ~6%."""
        bri = DATASET_PRESETS["bri_tiny"]
        ratio = bri.num_objects / bri.generator.num_nodes
        assert 0.05 <= ratio <= 0.12

    def test_objects_attached_to_network(self, aus_tiny):
        net = aus_tiny.network
        for node in net.object_nodes():
            assert net.degree(node) >= 1
            assert net.keywords(node)

    def test_frequent_keywords(self, aus_tiny):
        top = aus_tiny.frequent_keywords(5)
        assert len(top) == 5
        freq = aus_tiny.network.keyword_frequencies()
        assert freq[top[0]] >= freq[top[4]]

    def test_build_deterministic(self):
        a = build_dataset(DATASET_PRESETS["aus_tiny"])
        b = build_dataset(DATASET_PRESETS["aus_tiny"])
        assert list(a.network.edges()) == list(b.network.edges())
        for node in a.network.nodes():
            assert a.network.keywords(node) == b.network.keywords(node)


class TestQueryGenerator:
    def test_requires_positions_and_objects(self):
        from repro.graph import RoadNetworkBuilder

        b = RoadNetworkBuilder()
        b.add_junction()
        b.add_junction()
        b.add_edge(0, 1, 1.0)
        with pytest.raises(QueryError):
            QueryGenerator(b.build())

    def test_sgkq_shape(self, aus_tiny):
        gen = QueryGenerator(aus_tiny.network, QueryGenConfig(seed=1))
        query = gen.sgkq(3, 5.0)
        assert len(query.terms) == 3
        assert len(set(query.keywords())) == 3
        assert all(t.radius == 5.0 for t in query.terms)
        vocab = aus_tiny.network.all_keywords()
        assert all(kw in vocab for kw in query.keywords())

    def test_deterministic_given_seed(self, aus_tiny):
        a = QueryGenerator(aus_tiny.network, QueryGenConfig(seed=5)).sgkq_batch(4, 3, 5.0)
        b = QueryGenerator(aus_tiny.network, QueryGenConfig(seed=5)).sgkq_batch(4, 3, 5.0)
        assert [q.keywords() for q in a] == [q.keywords() for q in b]

    def test_different_seeds_vary(self, aus_tiny):
        a = QueryGenerator(aus_tiny.network, QueryGenConfig(seed=1)).sgkq_batch(6, 3, 5.0)
        b = QueryGenerator(aus_tiny.network, QueryGenConfig(seed=2)).sgkq_batch(6, 3, 5.0)
        assert [q.keywords() for q in a] != [q.keywords() for q in b]

    def test_rkq_location_is_object(self, aus_tiny):
        gen = QueryGenerator(aus_tiny.network, QueryGenConfig(seed=3))
        query = gen.rkq(2, 4.0)
        (location,) = query.node_sources()
        assert aus_tiny.network.is_object(location)
        assert query.terms[0].radius == 4.0
        assert all(t.radius == 0.0 for t in query.terms[1:])

    def test_dfunction_mix_operator_split(self, aus_tiny):
        gen = QueryGenerator(aus_tiny.network, QueryGenConfig(seed=4))
        query = gen.dfunction_mix(5, 3.0, 2)
        # Recover the ops from the compiled chain by walking term order.
        assert len(query.terms) == 5
        assert "2 minus" in query.label

    def test_dfunction_mix_bounds(self, aus_tiny):
        gen = QueryGenerator(aus_tiny.network, QueryGenConfig(seed=4))
        with pytest.raises(QueryError):
            gen.dfunction_mix(3, 1.0, 3)

    def test_frequency_bias(self, aus_tiny):
        """Frequent keywords appear more often across generated queries."""
        net = aus_tiny.network
        gen = QueryGenerator(net, QueryGenConfig(seed=6))
        from collections import Counter

        counts: Counter[str] = Counter()
        for query in gen.sgkq_batch(40, 2, 3.0):
            counts.update(query.keywords())
        freq = net.keyword_frequencies()
        popular = {kw for kw, _ in Counter(freq).most_common(10)}
        popular_hits = sum(counts[kw] for kw in popular)
        assert popular_hits > sum(counts.values()) * 0.25
