"""Assorted edge-case tests that cut across modules."""

from __future__ import annotations

import math

import pytest

from repro import DisksEngine, EngineConfig, sgkq
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.core.coverage import FragmentRuntime
from repro.dist.parallel import parallel_execute_query
from repro.exceptions import QueryError, RadiusExceededError
from repro.graph import RoadNetworkBuilder
from repro.partition import BfsPartitioner, Partition
from repro.workloads import QueryGenConfig, QueryGenerator

from helpers import make_random_network


class TestParallelErrorPropagation:
    def test_radius_violation_surfaces_from_workers(self):
        net = make_random_network(seed=880, num_junctions=16, num_objects=8)
        partition = BfsPartitioner(seed=8).partition(net, 2)
        fragments = build_fragments(net, partition)
        indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=1.0))
        runtimes = [FragmentRuntime(f, i) for f, i in zip(fragments, indexes)]
        with pytest.raises(RadiusExceededError):
            parallel_execute_query(runtimes, sgkq(["w0"], 5.0), processes=2)


class TestQueryGeneratorLimits:
    def test_impossible_keyword_count_raises(self):
        """Asking for more distinct keywords than the dataset holds fails loudly."""
        builder = RoadNetworkBuilder()
        a = builder.add_object({"only"}, position=(0.0, 0.0))
        b = builder.add_junction(position=(1.0, 0.0))
        builder.add_edge(a, b, 1.0)
        net = builder.build()
        generator = QueryGenerator(net, QueryGenConfig(seed=1, max_range_doublings=2))
        with pytest.raises(QueryError):
            generator.sgkq(5, 1.0)

    def test_single_keyword_dataset_works(self):
        builder = RoadNetworkBuilder()
        a = builder.add_object({"only"}, position=(0.0, 0.0))
        b = builder.add_junction(position=(1.0, 0.0))
        builder.add_edge(a, b, 1.0)
        net = builder.build()
        generator = QueryGenerator(net, QueryGenConfig(seed=1))
        query = generator.sgkq(1, 1.0)
        assert query.keywords() == ["only"]


class TestMinimalDeployments:
    def test_single_node_fragment(self):
        """A fragment holding one node still builds and answers."""
        builder = RoadNetworkBuilder()
        a = builder.add_object({"x"}, position=(0.0, 0.0))
        b = builder.add_object({"y"}, position=(1.0, 0.0))
        c = builder.add_junction(position=(2.0, 0.0))
        builder.add_edge(a, b, 1.0)
        builder.add_edge(b, c, 1.0)
        net = builder.build()

        class _Fixed:
            def partition(self, _net, k):
                return Partition.from_assignment([0, 1, 1], 2)

        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=2,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=_Fixed(),
            ),
        )
        assert engine.results(sgkq(["x"], 1.5)) == {a, b}
        assert engine.results(sgkq(["x", "y"], 1.0)) == {a, b}

    def test_two_node_network_end_to_end(self):
        builder = RoadNetworkBuilder()
        a = builder.add_object({"x"})
        b = builder.add_object({"y"})
        builder.add_edge(a, b, 2.0)
        net = builder.build()
        engine = DisksEngine.build(
            net,
            EngineConfig(num_fragments=2, lambda_factor=None, max_radius=math.inf),
        )
        assert engine.results(sgkq(["x", "y"], 2.0)) == {a, b}
        assert engine.results(sgkq(["x", "y"], 1.0)) == frozenset()


class TestDisconnectedNetworks:
    def test_coverage_confined_to_component(self):
        builder = RoadNetworkBuilder()
        a = builder.add_object({"x"}, position=(0.0, 0.0))
        b = builder.add_junction(position=(1.0, 0.0))
        c = builder.add_object({"x"}, position=(10.0, 0.0))
        d = builder.add_junction(position=(11.0, 0.0))
        builder.add_edge(a, b, 1.0)
        builder.add_edge(c, d, 1.0)
        net = builder.build()
        engine = DisksEngine.build(
            net,
            EngineConfig(
                num_fragments=2,
                lambda_factor=None,
                max_radius=math.inf,
                partitioner=BfsPartitioner(seed=1),
            ),
        )
        # Both components have an "x" carrier; nothing crosses the gap.
        assert engine.results(sgkq(["x"], 1.5)) == {a, b, c, d}
        assert engine.results(sgkq(["x"], 0.5)) == {a, c}
