"""Tests for the compressed index-file variant."""

from __future__ import annotations

import math

import pytest

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.exceptions import ChecksumError, CodecError, StorageError
from repro.partition import BfsPartitioner
from repro.storage import read_index_file, write_index_file

from helpers import make_random_network


@pytest.fixture(scope="module")
def indexes():
    net = make_random_network(seed=750, num_junctions=40, num_objects=20, vocabulary=5)
    fragments = build_fragments(net, BfsPartitioner(seed=7).partition(net, 3))
    built, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=math.inf))
    return built


class TestCompressedIndexFiles:
    def test_round_trip(self, indexes, tmp_path):
        for index in indexes:
            path = tmp_path / f"c{index.fragment_id}.npd"
            write_index_file(index, path, compress=True)
            clone = read_index_file(path)
            assert clone.shortcuts == index.shortcuts
            assert clone.keyword_entries == index.keyword_entries
            assert clone.node_entries == index.node_entries
            assert clone.max_radius == index.max_radius

    def test_compression_shrinks_files(self, indexes, tmp_path):
        index = max(indexes, key=lambda i: i.num_recorded_distances)
        raw = write_index_file(index, tmp_path / "raw.npd")
        small = write_index_file(index, tmp_path / "small.npd", compress=True)
        assert small < raw

    def test_variants_interoperate(self, indexes, tmp_path):
        """Raw and compressed files of the same index load identically."""
        index = indexes[0]
        write_index_file(index, tmp_path / "a.npd")
        write_index_file(index, tmp_path / "b.npd", compress=True)
        a = read_index_file(tmp_path / "a.npd")
        b = read_index_file(tmp_path / "b.npd")
        assert a.shortcuts == b.shortcuts
        assert a.keyword_entries == b.keyword_entries
        assert a.node_entries == b.node_entries

    def test_corrupt_compressed_record_detected(self, indexes, tmp_path):
        path = tmp_path / "rot.npd"
        write_index_file(indexes[0], path, compress=True)
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises((StorageError, ChecksumError, CodecError)):
            read_index_file(path)
