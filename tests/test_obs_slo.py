"""SLO burn-rate engine: ring sums, burn math, multi-window alerts."""

from __future__ import annotations

import pytest

from repro.obs.events import global_events
from repro.obs.slo import DEFAULT_WINDOWS, SLOEngine, SLOObjectives, SLOTracker


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


WINDOWS = (("10s", 10), ("1m", 60), ("5m", 300))


def make_tracker(clock, **objective_kwargs):
    defaults = dict(
        availability_target=0.99,
        latency_threshold_ms=100.0,
        latency_target=0.9,
        alert_burn=10.0,
        alert_burn_long=2.0,
        alert_cooldown_seconds=60.0,
    )
    defaults.update(objective_kwargs)
    return SLOTracker(
        "query", SLOObjectives(**defaults), windows=WINDOWS, clock=clock
    )


class TestObjectives:
    @pytest.mark.parametrize("field", ["availability_target", "latency_target"])
    @pytest.mark.parametrize("value", [0.0, 1.0, -0.1, 1.5])
    def test_targets_must_be_a_fraction(self, field, value):
        with pytest.raises(ValueError):
            SLOObjectives(**{field: value})

    def test_default_windows_are_sorted_short_to_long(self):
        labels = [label for label, _ in DEFAULT_WINDOWS]
        seconds = [s for _, s in DEFAULT_WINDOWS]
        assert labels == ["1m", "5m", "1h"]
        assert seconds == sorted(seconds)


class TestBurnMath:
    def test_empty_windows_burn_zero(self):
        tracker = make_tracker(FakeClock())
        burns = tracker.burn_rates()
        assert all(b == 0.0 for b in burns["availability"].values())
        assert all(b == 0.0 for b in burns["latency"].values())

    def test_availability_burn_is_bad_fraction_over_budget(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(98):
            tracker.record(True, 0.010)
        for _ in range(2):
            tracker.record(False, 0.010)
        burns = tracker.burn_rates()
        # 2% failures against a 1% budget: burn 2.0 in every live window.
        assert burns["availability"]["10s"] == pytest.approx(2.0)
        assert burns["availability"]["1m"] == pytest.approx(2.0)

    def test_latency_burn_counts_slow_successes_over_good_only(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(30):
            tracker.record(True, 0.010)
        for _ in range(10):
            tracker.record(True, 0.500)  # slow but ok
        for _ in range(60):
            tracker.record(False, 0.500)  # failures never count as slow
        burns = tracker.burn_rates()
        # 10 slow of 40 good against a 10% budget: burn 2.5.
        assert burns["latency"]["10s"] == pytest.approx(2.5)

    def test_old_traffic_ages_out_of_short_windows(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        tracker.record(False, 0.010)
        clock.advance(30.0)
        burns = tracker.burn_rates()
        assert burns["availability"]["10s"] == 0.0
        assert burns["availability"]["1m"] > 0.0

    def test_ring_lap_does_not_resurrect_stale_buckets(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        tracker.record(False, 0.010)
        clock.advance(300.0)  # exactly one full lap of the longest window
        tracker.record(True, 0.010)
        burns = tracker.burn_rates()
        # The lapped failure bucket was overwritten, not double counted.
        assert burns["availability"]["5m"] == 0.0

    def test_snapshot_totals_and_attainment(self):
        tracker = make_tracker(FakeClock())
        for _ in range(8):
            tracker.record(True, 0.010)
        tracker.record(True, 0.500)
        tracker.record(False, 0.010)
        snapshot = tracker.snapshot()
        assert snapshot["total"] == 10
        assert snapshot["errors"] == 1
        assert snapshot["slow"] == 1
        assert snapshot["availability"] == pytest.approx(0.9)
        assert snapshot["latency_attainment"] == pytest.approx(8 / 9)
        assert snapshot["objectives"]["latency_threshold_ms"] == 100.0


def slo_burn_events():
    return [e for e in global_events().tail(64) if e["kind"] == "slo_burn"]


class TestMultiWindowAlert:
    def test_alert_needs_short_and_long_window_burning(self):
        clock = FakeClock()
        tracker = make_tracker(clock, alert_burn=5.0)
        before = len(slo_burn_events())
        # One failure in 10 requests = 10% bad = burn ~10 on a 1% budget
        # in both the 10s and 1m windows — past the 5.0 alert threshold.
        for _ in range(9):
            tracker.record(True, 0.010)
        tracker.record(False, 0.010)
        events = slo_burn_events()[before:]
        assert len(events) == 1
        event = events[0]
        assert event["op"] == "query"
        assert event["objective"] == "availability"
        assert event["burn_short"] == pytest.approx(10.0, rel=1e-3)
        assert event["window_short"] == "10s"
        assert event["window_long"] == "1m"

    def test_short_spike_alone_does_not_alert(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        # Dilute the 1m window with old successes so only 10s burns hot.
        for _ in range(400):
            tracker.record(True, 0.010)
        clock.advance(30.0)
        before = len(slo_burn_events())
        tracker.record(False, 0.010)
        burns = tracker.burn_rates()
        assert burns["availability"]["10s"] >= 10.0
        assert burns["availability"]["1m"] < 2.0
        assert len(slo_burn_events()) == before

    def test_cooldown_suppresses_repeat_alerts(self):
        clock = FakeClock()
        tracker = make_tracker(clock, alert_cooldown_seconds=60.0)
        before = len(slo_burn_events())
        for _ in range(5):
            tracker.record(False, 0.010)
        assert len(slo_burn_events()) == before + 1
        assert tracker.snapshot()["alerts"] == 1
        clock.advance(61.0)
        tracker.record(False, 0.010)
        assert len(slo_burn_events()) == before + 2
        assert tracker.snapshot()["alerts"] == 2


class TestEngine:
    def test_snapshot_skips_idle_ops(self):
        clock = FakeClock()
        engine = SLOEngine(windows=WINDOWS, clock=clock)
        engine.record("query", True, 0.010)
        engine.record("unknown-op", True, 0.010)  # silently ignored
        snapshot = engine.snapshot()
        assert set(snapshot) == {"query"}

    def test_per_op_objectives(self):
        clock = FakeClock()
        engine = SLOEngine(
            {"update": SLOObjectives(latency_threshold_ms=5.0)},
            windows=WINDOWS,
            clock=clock,
        )
        engine.record("update", True, 0.010)
        engine.record("query", True, 0.010)
        snapshot = engine.snapshot()
        assert snapshot["update"]["slow"] == 1  # 10ms > 5ms threshold
        assert snapshot["query"]["slow"] == 0  # default 250ms threshold

    def test_sync_gauges_names(self):
        class Gauges:
            def __init__(self):
                self.values = {}

            def observe_gauge(self, name, value):
                self.values[name] = value

        clock = FakeClock()
        engine = SLOEngine(windows=WINDOWS, clock=clock)
        for _ in range(99):
            engine.record("query", True, 0.010)
        engine.record("query", False, 0.010)
        gauges = Gauges()
        engine.sync_gauges(gauges)
        # 1% bad against the default 0.1% budget: burn 10.
        assert gauges.values["slo_query_availability_burn_10s"] == pytest.approx(10.0)
        assert "slo_update_latency_burn_5m" in gauges.values
