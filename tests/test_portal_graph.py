"""Tests for the BLINKS/HiTi-style partition-based baseline (§3.6)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import sgkq, rkq
from repro.baselines import CentralizedEvaluator, PortalGraphIndex, PortalGraphStats
from repro.core.queries import CoverageTerm, KeywordSource
from repro.exceptions import GraphError
from repro.partition import BfsPartitioner, RandomPartitioner

from helpers import make_random_network, oracle_coverage


@pytest.fixture(scope="module")
def portal_case():
    net = make_random_network(seed=550, num_junctions=22, num_objects=11, vocabulary=4)
    partition = BfsPartitioner(seed=5).partition(net, 3)
    return net, partition, PortalGraphIndex(net, partition)


class TestConstruction:
    def test_directed_rejected(self):
        net = make_random_network(seed=1, directed=True)
        partition = BfsPartitioner(seed=1).partition(net, 2)
        with pytest.raises(GraphError):
            PortalGraphIndex(net, partition)

    def test_portal_graph_covers_all_portals(self, portal_case):
        net, partition, index = portal_case
        expected_portals = set()
        for u, v, _w in net.edges():
            if partition.fragment_of(u) != partition.fragment_of(v):
                expected_portals.add(u)
                expected_portals.add(v)
        assert index.num_portals == len(expected_portals)

    def test_size_accounting(self, portal_case):
        _net, _partition, index = portal_case
        assert index.num_recorded_distances > index.portal_graph_edges > 0


class TestExactness:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 800), radius=st.floats(min_value=0.0, max_value=7.0))
    def test_coverage_matches_definition(self, seed, radius):
        net = make_random_network(seed=seed, num_junctions=16, num_objects=8, vocabulary=3)
        partition = BfsPartitioner(seed=seed).partition(net, 3)
        index = PortalGraphIndex(net, partition)
        keyword = sorted(net.all_keywords())[0]
        term = CoverageTerm(KeywordSource(keyword), radius)
        assert index.coverage(term) == oracle_coverage(net, term)

    def test_sgkq_matches_oracle(self, portal_case):
        net, _partition, index = portal_case
        oracle = CentralizedEvaluator(net)
        for radius in (1.0, 3.0, 6.0):
            query = sgkq(["w0", "w1"], radius)
            assert index.results(query) == oracle.results(query)

    def test_rkq_matches_oracle(self, portal_case):
        net, _partition, index = portal_case
        oracle = CentralizedEvaluator(net)
        location = next(iter(net.object_nodes()))
        query = rkq(location, ["w0"], 4.0)
        assert index.results(query) == oracle.results(query)

    def test_exact_under_random_partition(self):
        net = make_random_network(seed=991, num_junctions=18, num_objects=9, vocabulary=3)
        partition = RandomPartitioner(seed=9).partition(net, 4)
        index = PortalGraphIndex(net, partition)
        oracle = CentralizedEvaluator(net)
        query = sgkq(sorted(net.all_keywords())[:2], 3.0)
        assert index.results(query) == oracle.results(query)


class TestInteractionAccounting:
    def test_portal_graph_work_reported(self, portal_case):
        _net, _partition, index = portal_case
        _result, stats, seconds = index.execute(sgkq(["w0", "w1"], 5.0))
        assert stats.portal_graph_settled > 0
        assert stats.local_settled > 0
        assert stats.portal_graph_edges == index.portal_graph_edges
        assert seconds >= 0

    def test_more_fragments_mean_more_portals(self):
        """The §3.6 point: the *global* portal structure grows as a sparse
        road network is partitioned finer, unlike NPD's per-fragment
        indexes (on dense random graphs every node is already a portal,
        so a planar grid is the representative fixture here)."""
        from repro.graph import GeneratorConfig, generate_road_network

        net = generate_road_network(GeneratorConfig(kind="grid", num_nodes=400, seed=2))
        counts = []
        for k in (2, 8):
            index = PortalGraphIndex(net, BfsPartitioner(seed=1).partition(net, k))
            counts.append(index.num_portals)
        assert counts[1] > counts[0]
