"""Tests for the planner, the §5.1/§5.2 cost model, and the bi-level index."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    BiLevelIndex,
    DLNodePolicy,
    NPDBuildConfig,
    build_all_indexes,
    build_fragments,
    makespan,
    rkq,
    sgkq,
    theorem5_cost,
    unbalance_factor,
)
from repro.core.cost import assign_tasks, theorem6_bound
from repro.core.npd import NPDIndex
from repro.core.planner import plan_query
from repro.exceptions import (
    DisksError,
    IndexBuildError,
    NodeNotFoundError,
    QueryError,
    RadiusExceededError,
    UnknownKeywordError,
)
from repro.partition import BfsPartitioner

from helpers import make_random_network


@pytest.fixture()
def planner_net():
    return make_random_network(seed=70, num_junctions=15, num_objects=8, vocabulary=4)


class TestPlanner:
    def test_valid_query_passes(self, planner_net):
        plan = plan_query(
            sgkq(["w0"], 2.0),
            planner_net,
            max_radius=5.0,
            node_policy=DLNodePolicy.OBJECTS,
        )
        assert not plan.use_unbounded
        assert plan.empty_keyword_terms == ()

    def test_unknown_keyword_strict(self, planner_net):
        with pytest.raises(UnknownKeywordError):
            plan_query(
                sgkq(["missing"], 1.0),
                planner_net,
                max_radius=5.0,
                node_policy=DLNodePolicy.OBJECTS,
            )

    def test_unknown_keyword_lenient(self, planner_net):
        plan = plan_query(
            sgkq(["missing", "w0"], 1.0),
            planner_net,
            max_radius=5.0,
            node_policy=DLNodePolicy.OBJECTS,
            strict_keywords=False,
        )
        assert plan.empty_keyword_terms == (0,)

    def test_bad_node_source(self, planner_net):
        with pytest.raises(NodeNotFoundError):
            plan_query(
                rkq(10_000, ["w0"], 1.0),
                planner_net,
                max_radius=5.0,
                node_policy=DLNodePolicy.OBJECTS,
            )

    def test_node_policy_none_rejects_node_sources(self, planner_net):
        with pytest.raises(QueryError):
            plan_query(
                rkq(0, ["w0"], 1.0),
                planner_net,
                max_radius=5.0,
                node_policy=DLNodePolicy.NONE,
            )

    def test_junction_location_needs_all_policy(self, planner_net):
        junction = next(
            n for n in planner_net.nodes() if not planner_net.is_object(n)
        )
        with pytest.raises(QueryError):
            plan_query(
                rkq(junction, ["w0"], 1.0),
                planner_net,
                max_radius=5.0,
                node_policy=DLNodePolicy.OBJECTS,
            )
        plan = plan_query(
            rkq(junction, ["w0"], 1.0),
            planner_net,
            max_radius=5.0,
            node_policy=DLNodePolicy.ALL,
        )
        assert plan.query.node_sources() == [junction]

    def test_radius_over_maxr(self, planner_net):
        with pytest.raises(RadiusExceededError):
            plan_query(
                sgkq(["w0"], 9.0),
                planner_net,
                max_radius=5.0,
                node_policy=DLNodePolicy.OBJECTS,
            )
        plan = plan_query(
            sgkq(["w0"], 9.0),
            planner_net,
            max_radius=5.0,
            node_policy=DLNodePolicy.OBJECTS,
            has_unbounded_level=True,
        )
        assert plan.use_unbounded


class TestCostModel:
    def test_theorem5_components(self):
        index = NPDIndex(fragment_id=0, max_radius=10.0, node_policy=DLNodePolicy.OBJECTS)
        index.add_shortcut(0, 1, 1.0)
        index.add_shortcut(1, 2, 1.0)
        index.seal({"a": [(0, 1.0), (1, 2.0)], "b": [(2, 1.0)]}, {})
        # keywords a (α=2) and b (α=1), β=2, coverage sizes 4 and 1.
        cost = theorem5_cost(index, ["a", "b"], [4, 1])
        expected = (2 + 2 + 4 * math.log2(4)) + (1 + 2 + 0)
        assert cost == pytest.approx(expected)

    def test_theorem5_alignment_checked(self):
        index = NPDIndex(fragment_id=0, max_radius=1.0, node_policy=DLNodePolicy.NONE)
        with pytest.raises(DisksError):
            theorem5_cost(index, ["a"], [1, 2])

    def test_assign_tasks_idle_machine_strategy(self):
        plan = assign_tasks([5.0, 1.0, 1.0, 1.0], 2)
        # Task 0 -> machine 0; tasks 1..3 land on the earliest-idle machine.
        assert plan[0] == [0]
        assert plan[1] == [1, 2, 3]

    def test_makespan_one_task_per_machine(self):
        assert makespan([3.0, 1.0, 2.0], 3) == 3.0

    def test_makespan_fewer_machines(self):
        # Greedy: m0=[4], m1=[3,2] -> makespan 5.
        assert makespan([4.0, 3.0, 2.0], 2) == 5.0

    def test_makespan_validation(self):
        with pytest.raises(DisksError):
            makespan([1.0], 0)
        with pytest.raises(DisksError):
            makespan([-1.0], 1)
        assert makespan([], 2) == 0.0

    def test_unbalance_factor(self):
        assert unbalance_factor([2.0, 2.0]) == 1.0
        assert unbalance_factor([4.0, 2.0]) == 2.0
        assert unbalance_factor([1.0]) == 1.0
        assert unbalance_factor([]) == 1.0
        assert unbalance_factor([0.0, 1.0]) == math.inf
        assert unbalance_factor([0.0, 0.0]) == 1.0

    def test_theorem6_bound_holds_for_list_scheduling(self):
        """Observed U never exceeds 1 + max/min for any machine count."""
        import random

        rng = random.Random(4)
        for _ in range(50):
            costs = [rng.uniform(0.5, 5.0) for _ in range(rng.randint(2, 12))]
            machines = rng.randint(2, len(costs))
            plan = assign_tasks(costs, machines)
            loads = [sum(costs[t] for t in tasks) for tasks in plan if tasks]
            assert unbalance_factor(loads) <= theorem6_bound(costs) + 1e-9


class TestBiLevel:
    def _indexes(self, max_radius):
        net = make_random_network(seed=71, num_junctions=12, num_objects=6)
        partition = BfsPartitioner(seed=1).partition(net, 2)
        fragments = build_fragments(net, partition)
        indexes, _ = build_all_indexes(
            net, fragments, NPDBuildConfig(max_radius=max_radius)
        )
        return tuple(indexes)

    def test_routing(self):
        bounded = self._indexes(3.0)
        unbounded = self._indexes(math.inf)
        bilevel = BiLevelIndex(bounded=bounded, unbounded=unbounded)
        assert bilevel.level_for(2.0) is bounded
        assert bilevel.level_for(3.0) is bounded
        assert bilevel.level_for(7.0) is unbounded
        assert bilevel.needs_unbounded(7.0)

    def test_missing_second_level_raises(self):
        bilevel = BiLevelIndex(bounded=self._indexes(3.0))
        with pytest.raises(RadiusExceededError):
            bilevel.level_for(4.0)

    def test_validation(self):
        with pytest.raises(IndexBuildError):
            BiLevelIndex(bounded=())
        with pytest.raises(IndexBuildError):
            BiLevelIndex(bounded=self._indexes(3.0), unbounded=self._indexes(5.0))
        with pytest.raises(IndexBuildError):
            BiLevelIndex(
                bounded=self._indexes(3.0), unbounded=self._indexes(math.inf)[:1]
            )
