"""Directed-network coverage across the whole stack.

The paper notes the method "can be easily adapted for the directed
graph"; this suite pins our adaptation down: coverage is defined in the
source→node direction everywhere (builder, engine, baselines), the
backward index search runs on the reverse graph, and every component
that supports directed mode agrees with the oracle.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import DisksEngine, EngineConfig, rkq, sgkq
from repro.baselines import BSPQueryEvaluator, CentralizedEvaluator
from repro.core import (
    DLNodePolicy,
    KeywordSource,
    NodeSource,
    NPDBuildConfig,
    TopKQuery,
    build_all_indexes,
    build_fragments,
)
from repro.core.coverage import FragmentRuntime
from repro.partition import BfsPartitioner
from repro.search import shortest_path_distances
from repro.storage import read_index_file, write_index_file

from helpers import make_random_network, oracle_distances


def directed_engine(seed: int, k: int = 3, policy=DLNodePolicy.OBJECTS):
    net = make_random_network(
        seed=seed, num_junctions=16, num_objects=8, vocabulary=4, directed=True
    )
    engine = DisksEngine.build(
        net,
        EngineConfig(
            num_fragments=k,
            lambda_factor=None,
            max_radius=math.inf,
            node_policy=policy,
            partitioner=BfsPartitioner(seed=seed),
        ),
    )
    return net, engine


class TestDirectedIndexRules:
    def test_shortcuts_respect_arc_direction(self):
        net, engine = directed_engine(seed=10)
        for fragment, index in zip(engine.fragments, engine.indexes):
            assert index.directed
            for (u, v), w in index.shortcuts.items():
                # The recorded weight is the exact forward u -> v distance.
                oracle = oracle_distances(net, [u])
                assert w == pytest.approx(oracle[v])

    def test_dl_entries_are_forward_distances(self):
        net, engine = directed_engine(seed=11)
        for fragment, index in zip(engine.fragments, engine.indexes):
            for node, pairs in index.node_entries.items():
                oracle = oracle_distances(net, [node])
                for pd in pairs:
                    assert pd.distance == pytest.approx(oracle[pd.portal])

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 400))
    def test_complete_fragment_forward_distances(self, seed):
        net, engine = directed_engine(seed=seed)
        for fragment, index in zip(engine.fragments, engine.indexes):
            runtime = FragmentRuntime(fragment, index)
            source = sorted(fragment.members)[0]
            local = shortest_path_distances(runtime.adjacency, [source])
            oracle = oracle_distances(net, [source])
            for member in fragment.members:
                assert local.get(member, math.inf) == pytest.approx(
                    oracle.get(member, math.inf)
                )


class TestDirectedQueries:
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 1000), radius=st.floats(min_value=0.5, max_value=6.0))
    def test_rkq_matches_oracle(self, seed, radius):
        net, engine = directed_engine(seed=seed)
        rng = random.Random(seed)
        location = rng.choice(list(net.object_nodes()))
        keyword = rng.choice(sorted(net.all_keywords()))
        query = rkq(location, [keyword], radius)
        assert engine.results(query) == CentralizedEvaluator(net).results(query)

    def test_coverage_is_source_to_node(self):
        """A one-way chain reaches forward, not backward."""
        from repro.graph import RoadNetworkBuilder

        b = RoadNetworkBuilder(directed=True)
        a = b.add_object({"shop"})
        mid = b.add_junction()
        c = b.add_object({"other"})
        b.add_edge(a, mid, 1.0)
        b.add_edge(mid, c, 1.0)
        net = b.build()
        oracle = CentralizedEvaluator(net)
        # From the shop, forward: a, mid, c within 2.
        query = sgkq(["shop"], 2.0)
        assert oracle.results(query) == {a, mid, c}
        # From "other" (downstream end), nothing is reachable forward.
        assert oracle.results(sgkq(["other"], 2.0)) == {c}

    def test_bsp_agrees_on_directed(self):
        net, engine = directed_engine(seed=12)
        bsp = BSPQueryEvaluator(net, engine.partition)
        query = sgkq(sorted(net.all_keywords())[:2], 3.0)
        assert bsp.execute(query).result_nodes == engine.results(query)

    def test_topk_on_directed(self):
        net, engine = directed_engine(seed=13)
        keyword = sorted(net.all_keywords())[0]
        seeds = [n for n in net.nodes() if keyword in net.keywords(n)]
        oracle = oracle_distances(net, seeds)
        expected = sorted(oracle.items(), key=lambda kv: (kv[1], kv[0]))[:4]
        result = engine.top_k(TopKQuery(KeywordSource(keyword), 4, 100.0))
        assert [n for n, _d in result.ranking] == [n for n, _d in expected]

    def test_explain_on_directed(self):
        net, engine = directed_engine(seed=14)
        keyword = sorted(net.all_keywords())[0]
        query = sgkq([keyword], 3.0)
        explained = engine.explain(query)
        seeds = [n for n in net.nodes() if keyword in net.keywords(n)]
        oracle = oracle_distances(net, seeds)
        for node, (distance,) in explained.items():
            assert distance == pytest.approx(oracle[node])


class TestDirectedStorage:
    def test_index_file_round_trip_keeps_directedness(self, tmp_path):
        net, engine = directed_engine(seed=15)
        path = tmp_path / "directed.npd"
        write_index_file(engine.indexes[0], path)
        clone = read_index_file(path)
        assert clone.directed
        assert clone.shortcuts == engine.indexes[0].shortcuts


class TestDirectedStrictMode:
    def test_strict_build_exact_on_directed(self):
        net, engine = directed_engine(seed=16)
        fragments = build_fragments(net, engine.partition)
        indexes, _ = build_all_indexes(
            net, fragments, NPDBuildConfig(max_radius=math.inf, strict_tie_rules=True)
        )
        from repro.core.executor import execute_fragment_task

        oracle = CentralizedEvaluator(net)
        query = sgkq(sorted(net.all_keywords())[:2], 4.0)
        merged: set[int] = set()
        for fragment, index in zip(fragments, indexes):
            runtime = FragmentRuntime(fragment, index)
            merged |= execute_fragment_task(runtime, query).local_result
        assert merged == oracle.results(query)
