"""Unit tests for :mod:`repro.graph.road_network`."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph import NodeKind, RoadNetwork, RoadNetworkBuilder

from helpers import make_random_network


def build_triangle(directed: bool = False) -> RoadNetwork:
    b = RoadNetworkBuilder(directed=directed)
    a = b.add_object({"cafe"}, position=(0, 0))
    c = b.add_junction(position=(1, 0))
    d = b.add_object({"gym", "pool"}, position=(0, 1))
    b.add_edge(a, c, 1.0)
    b.add_edge(c, d, 2.0)
    b.add_edge(a, d, 2.5)
    return b.build()


class TestShape:
    def test_node_and_edge_counts(self):
        net = build_triangle()
        assert net.num_nodes == 3
        assert net.num_edges == 3
        assert len(net) == 3

    def test_undirected_edges_counted_once(self):
        net = build_triangle()
        assert len(list(net.edges())) == 3

    def test_directed_arcs_counted_individually(self):
        b = RoadNetworkBuilder(directed=True)
        u = b.add_junction()
        v = b.add_junction()
        b.add_edge(u, v, 1.0)
        net = b.build()
        assert net.num_edges == 1
        assert net.has_edge(u, v)
        assert not net.has_edge(v, u)

    def test_contains(self):
        net = build_triangle()
        assert 0 in net and 2 in net
        assert 3 not in net
        assert "a" not in net

    def test_average_edge_weight(self):
        net = build_triangle()
        assert net.average_edge_weight == pytest.approx((1.0 + 2.0 + 2.5) / 3)

    def test_empty_network(self):
        net = RoadNetworkBuilder().build()
        assert net.num_nodes == 0
        assert net.num_edges == 0
        assert net.is_connected()


class TestAdjacency:
    def test_neighbors_symmetric_when_undirected(self):
        net = build_triangle()
        assert dict(net.neighbors(0)) == {1: 1.0, 2: 2.5}
        assert dict(net.in_neighbors(0)) == {1: 1.0, 2: 2.5}

    def test_directed_in_neighbors_differ(self):
        b = RoadNetworkBuilder(directed=True)
        u, v = b.add_junction(), b.add_junction()
        b.add_edge(u, v, 3.0)
        net = b.build()
        assert list(net.neighbors(u)) == [(v, 3.0)]
        assert list(net.neighbors(v)) == []
        assert list(net.in_neighbors(v)) == [(u, 3.0)]

    def test_neighbor_slice_matches_neighbors(self):
        net = make_random_network(seed=1)
        for node in net.nodes():
            nbrs, wts, lo, hi = net.neighbor_slice(node)
            pairs = [(nbrs[i], wts[i]) for i in range(lo, hi)]
            assert pairs == list(net.neighbors(node))

    def test_degree(self):
        net = build_triangle()
        assert net.degree(0) == 2

    def test_edge_weight(self):
        net = build_triangle()
        assert net.edge_weight(1, 2) == 2.0
        with pytest.raises(GraphError):
            net.edge_weight(0, 0)

    def test_unknown_node_raises(self):
        net = build_triangle()
        with pytest.raises(NodeNotFoundError):
            list(net.neighbors(99))
        with pytest.raises(NodeNotFoundError):
            net.degree(-1)


class TestAttributes:
    def test_kinds(self):
        net = build_triangle()
        assert net.kind(0) is NodeKind.OBJECT
        assert net.kind(1) is NodeKind.JUNCTION
        assert net.is_object(2)

    def test_keywords(self):
        net = build_triangle()
        assert net.keywords(0) == frozenset({"cafe"})
        assert net.keywords(1) == frozenset()
        assert net.has_keyword(2, "gym")
        assert not net.has_keyword(2, "cafe")

    def test_positions(self):
        net = build_triangle()
        assert net.has_positions
        assert net.position(2) == (0.0, 1.0)

    def test_position_absent_raises(self):
        b = RoadNetworkBuilder()
        b.add_junction()
        b.add_junction()
        b.add_edge(0, 1, 1.0)
        net = b.build()
        assert not net.has_positions
        with pytest.raises(GraphError):
            net.position(0)

    def test_object_nodes_and_counts(self):
        net = build_triangle()
        assert sorted(net.object_nodes()) == [0, 2]
        assert net.num_objects() == 2

    def test_keyword_scan(self):
        net = build_triangle()
        assert list(net.keyword_nodes("gym")) == [2]
        assert list(net.keyword_nodes("missing")) == []
        assert net.all_keywords() == {"cafe", "gym", "pool"}

    def test_keyword_frequencies(self):
        net = build_triangle()
        assert net.keyword_frequencies() == {"cafe": 1, "gym": 1, "pool": 1}


class TestConnectivity:
    def test_connected_triangle(self):
        assert build_triangle().is_connected()

    def test_disconnected_components(self):
        b = RoadNetworkBuilder()
        for _ in range(4):
            b.add_junction()
        b.add_edge(0, 1, 1.0)
        b.add_edge(2, 3, 1.0)
        net = b.build()
        assert not net.is_connected()
        assert net.connected_components() == [[0, 1], [2, 3]]

    def test_directed_weak_connectivity(self):
        b = RoadNetworkBuilder(directed=True)
        u, v = b.add_junction(), b.add_junction()
        b.add_edge(u, v, 1.0)
        net = b.build()
        assert net.is_connected()


class TestConstructorValidation:
    def test_inconsistent_offsets_rejected(self):
        with pytest.raises(GraphError):
            RoadNetwork([0, 1], [0, 0], [1.0, 1.0], [NodeKind.JUNCTION], [frozenset()])

    def test_mismatched_kinds_rejected(self):
        with pytest.raises(GraphError):
            RoadNetwork([0, 0], [], [], [], [frozenset()])

    def test_directed_requires_reverse(self):
        with pytest.raises(GraphError):
            RoadNetwork([0], [], [], [], [], directed=True)

    def test_undirected_rejects_reverse(self):
        with pytest.raises(GraphError):
            RoadNetwork([0], [], [], [], [], reverse=([0], [], []))
