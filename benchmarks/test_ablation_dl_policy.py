"""Ablation: DL node-entry policy (§3.7 pruning).

The paper prunes DL entries to keyword nodes; we expose the dial as
:class:`DLNodePolicy`.  This bench quantifies the trade: index size
(NONE < OBJECTS < ALL) vs capability (RKQ locations supported) and
query time.
"""

from __future__ import annotations

import statistics

from repro.core.npd import DLNodePolicy
from repro.storage import index_file_size

from common import DEFAULT_FRAGMENTS, dataset, engine, mean_distributed_ms, sgkq_batch
from repro.bench_support import Table, print_experiment_header

LAMBDA = 10.0


def test_ablation_dl_node_policy(benchmark):
    print_experiment_header(
        "ABLATION",
        "§3.7 DL pruning",
        "AUS: index size and SGKQ time under DL node policies NONE/OBJECTS/ALL.",
    )
    sizes = {}
    times = {}
    base = engine("aus_mini", DEFAULT_FRAGMENTS, LAMBDA, DLNodePolicy.OBJECTS)
    batch = sgkq_batch("aus_mini", 5, base.max_radius / 2)
    table = Table(
        "DL policy ablation (AUS, maxR=10e)",
        ["policy", "avg IND KiB", "node entries/frag", "SGKQ time (ms)"],
    )
    for policy in (DLNodePolicy.NONE, DLNodePolicy.OBJECTS, DLNodePolicy.ALL):
        deployment = engine("aus_mini", DEFAULT_FRAGMENTS, LAMBDA, policy)
        kib = statistics.mean(index_file_size(i) for i in deployment.indexes) / 1024
        entries = statistics.mean(len(i.node_entries) for i in deployment.indexes)
        ms = mean_distributed_ms(deployment, batch)
        sizes[policy] = kib
        times[policy] = ms
        table.add_row(policy.value, kib, int(entries), ms)
    table.show()

    # Size ordering is structural; query time should be barely affected
    # (SGKQ never touches node entries).
    assert sizes[DLNodePolicy.NONE] <= sizes[DLNodePolicy.OBJECTS] <= sizes[DLNodePolicy.ALL]
    assert max(times.values()) < min(times.values()) * 3.0

    # Answers are identical across policies for SGKQ.
    reference = engine("aus_mini", DEFAULT_FRAGMENTS, LAMBDA, DLNodePolicy.NONE)
    for query in batch[:2]:
        assert (
            engine("aus_mini", DEFAULT_FRAGMENTS, LAMBDA, DLNodePolicy.ALL).results(query)
            == reference.results(query)
        )

    benchmark(lambda: index_file_size(engine("aus_mini", DEFAULT_FRAGMENTS, LAMBDA).indexes[0]))
