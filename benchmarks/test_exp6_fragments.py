"""EXP 6 (Fig. 12, Fig. 13): effect of the number of fragments.

Paper: "the response time is approximately cut by half when the
fragments are doubled, demonstrating a good scalability."

Reproduced on both datasets: mean distributed response time (machine
makespan + modelled communication) for 2–16 fragments, one machine per
fragment, at the Table-2 defaults.
"""

from __future__ import annotations

from common import (
    DEFAULT_KEYWORDS,
    DEFAULT_LAMBDA,
    FRAGMENT_SWEEP,
    engine,
    mean_distributed_ms,
    sgkq_batch,
)
from repro.bench_support import Table, print_experiment_header


def _run(dataset_name: str, figure: str, benchmark) -> None:
    print_experiment_header(
        "EXP 6",
        figure,
        f"{dataset_name}: response time vs #fragments; 7 keywords, r = maxR.",
    )
    table = Table(
        f"{figure} — mean response time (ms), {dataset_name}",
        ["#fragments", "response (ms)", "total work (ms)"],
    )
    responses = []
    for fragments in FRAGMENT_SWEEP:
        deployment = engine(dataset_name, fragments, DEFAULT_LAMBDA)
        batch = sgkq_batch(dataset_name, DEFAULT_KEYWORDS, deployment.max_radius)
        reports = [deployment.execute(q) for q in batch]
        response = sum(r.response_seconds for r in reports) / len(reports) * 1000
        work = sum(r.total_task_seconds for r in reports) / len(reports) * 1000
        responses.append(response)
        table.add_row(fragments, response, work)
    table.show()

    # Paper shape: response time falls monotonically as fragments are
    # added, with a substantial overall win from 2 to 16.  (The paper's
    # "halves per doubling" holds best on its million-node graphs; on
    # the scaled datasets per-fragment fixed costs flatten the tail, so
    # require >=2x overall plus monotone non-increase within 10% noise.)
    assert responses[0] > responses[-1] * 2.0, (
        f"response should drop substantially with fragments: {responses}"
    )
    for earlier, later in zip(responses, responses[1:]):
        assert later <= earlier * 1.1, f"response must not regress: {responses}"

    deployment = engine(dataset_name, 16, DEFAULT_LAMBDA)
    batch = sgkq_batch(dataset_name, DEFAULT_KEYWORDS, deployment.max_radius)
    benchmark(lambda: [deployment.execute(q) for q in batch])


def test_exp6_fig12_bri(benchmark):
    _run("bri_mini", "Fig. 12 (BRI)", benchmark)


def test_exp6_fig13_aus(benchmark):
    _run("aus_mini", "Fig. 13 (AUS)", benchmark)
