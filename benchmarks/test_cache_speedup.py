"""Semantic result cache under a skewed workload with live churn.

Real query traffic is Zipf-skewed — a few popular keyword combinations
dominate — while the road network keeps absorbing a trickle of updates.
This benchmark replays exactly that shape against two identically-built
deployments (same dataset seeds, same partition, same update sequence):
one served with ``ServeConfig(cache=True)``, one without.  Between
replay rounds, single-op keyword updates confined to one fragment
(1/12 ≈ 8% fragment churn per swap, under the ≤10% target) swap epochs
through a live :class:`EpochManager`, so the cache keeps paying its
invalidation costs while it earns its hits.

Both deployments run behind the same emulated interconnect
(``NetworkModel``, 2 ms one-way — the routed-datacenter link of the
serve benchmark), because on single-host pipes the network the cache
short-circuits does not exist.  The correctness gate — identical final
answers for the whole query pool, cache-on vs cache-off — runs in every
mode; set ``BENCH_CACHE_CORRECTNESS_ONLY=1`` (the CI smoke job does) to
skip the timing assertion and shrink the workload.
"""

from __future__ import annotations

import os
import random

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.dist import NetworkModel
from repro.live import AddKeyword, EpochManager, RemoveKeyword
from repro.partition import BfsPartitioner
from repro.serve import (
    PipelinedCluster,
    ServeClient,
    ServeConfig,
    generate_expressions,
    run_loadgen,
    serve_in_thread,
)
from repro.workloads.datasets import DATASET_PRESETS, build_dataset

from repro.bench_support import Table, print_experiment_header, record_benchmark

CORRECTNESS_ONLY = os.environ.get("BENCH_CACHE_CORRECTNESS_ONLY") == "1"

BENCH_FILE = "BENCH_cache.json"
REQUIRED_SPEEDUP = 5.0
ZIPF_EXPONENT = 1.0
NUM_FRAGMENTS = 12
NUM_MACHINES = 4
NUM_CLIENTS = 4
LAMBDA = 5.0
LINK = NetworkModel(latency_seconds=2e-3)
POOL_SIZE = 8 if CORRECTNESS_ONLY else 24  # per radius class; pool is 2x this
ROUNDS = 2 if CORRECTNESS_ONLY else 4
QUERIES_PER_ROUND = 16 if CORRECTNESS_ONLY else 240
UPDATES_PER_ROUND = 2 if CORRECTNESS_ONLY else 3


def _fresh_state():
    """Deterministic deployment state, built uncached.

    ``load_dataset``/``engine`` are memoised module-wide and
    :meth:`EpochManager.apply` mutates the network in place, so this
    benchmark must never share a network with the other suites.
    """
    data = build_dataset(DATASET_PRESETS["aus_tiny"])
    net = data.network
    partition = BfsPartitioner(seed=5).partition(net, NUM_FRAGMENTS)
    fragments = build_fragments(net, partition)
    max_radius = LAMBDA * net.average_edge_weight
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(max_radius=max_radius))
    return net, partition, fragments, indexes, max_radius


def _zipf_stream(pool: list[str], count: int, seed: int) -> list[str]:
    """Sample the replayed stream with Zipf weights over pool rank."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(len(pool))]
    return rng.choices(pool, weights=weights, k=count)


def _pool_keywords(pool: list[str]):
    """Keyword usage counts across the query pool, least-used first."""
    from collections import Counter

    from repro.core import parse_query
    from repro.core.queries import KeywordSource

    counts: Counter[str] = Counter()
    for expression in pool:
        for term in parse_query(expression).terms:
            if isinstance(term.source, KeywordSource):
                counts[term.source.keyword] += 1
    return [kw for kw, _n in sorted(counts.items(), key=lambda kv: (kv[1], kv[0]))]


def _update_plan(net, partition, pool: list[str]) -> list:
    """Keyword toggles confined to fragment 0, valid in sequence.

    Each op touches exactly one fragment (≈8% of the 12), and
    add/remove alternation on initially-absent keywords keeps every op
    applicable no matter how many rounds replay it.  Toggled keywords
    are drawn from the *least-queried* end of the pool's vocabulary:
    every swap still invalidates real entries (the cache keeps paying
    for churn), without the unrealistic case of updates hammering
    exactly the hottest query keywords.
    """
    candidates = _pool_keywords(pool)
    targets = []
    for keyword in candidates:
        for node in net.object_nodes():
            if partition.assignment[node] != 0 or keyword in net.keywords(node):
                continue
            targets.append((node, keyword))
            break
        if len(targets) == 4:
            break
    assert targets, "fragment 0 holds no object with a spare pool keyword"
    plan, adding = [], {pair: True for pair in targets}
    for i in range(ROUNDS * UPDATES_PER_ROUND):
        node, keyword = targets[i % len(targets)]
        op = AddKeyword if adding[(node, keyword)] else RemoveKeyword
        plan.append(op(node, keyword))
        adding[(node, keyword)] = not adding[(node, keyword)]
    return plan


def _run_deployment(cache: bool, pool: list[str], stream: list[str]):
    """One full replay: per-round loadgen with updates between rounds.

    Returns ``(ok, wall_seconds, final_answers, result_cache_stats)``.
    """
    net, partition, fragments, indexes, _max_radius = _fresh_state()
    cluster = PipelinedCluster.start(
        fragments, indexes, num_machines=NUM_MACHINES, network_model=LINK
    )
    manager = EpochManager(
        network=net,
        partition=partition,
        fragments=list(fragments),
        indexes=list(indexes),
    )
    manager.subscribe(
        lambda state, delta: cluster.apply_updates(state.epoch, list(delta.values()))
    )
    plan = _update_plan(net, partition, pool)
    config = ServeConfig(max_inflight=32, cache=cache)
    ok = 0
    wall = 0.0
    try:
        with serve_in_thread(cluster, config, updater=manager) as server:
            with ServeClient(server.host, server.port) as client:
                client.query(stream[0])  # warm the workers
            for round_index in range(ROUNDS):
                report = run_loadgen(
                    server.host,
                    server.port,
                    stream[
                        round_index * QUERIES_PER_ROUND
                        : (round_index + 1) * QUERIES_PER_ROUND
                    ],
                    num_clients=NUM_CLIENTS,
                )
                assert report.errors == 0 and report.shed == 0, report
                ok += report.ok
                wall += report.wall_seconds
                for i in range(UPDATES_PER_ROUND):
                    manager.apply([plan[round_index * UPDATES_PER_ROUND + i]])
            with ServeClient(server.host, server.port) as client:
                final = {e: sorted(client.query(e)["nodes"]) for e in pool}
                stats = client.stats().get("result_cache")
    finally:
        cluster.shutdown()
    return ok, wall, final, stats


def test_semantic_cache_speedup():
    print_experiment_header(
        "CACHE",
        "epoch-aware semantic result cache",
        "Zipf(1.0) replay with ≤10% fragment churn per swap: "
        "ServeConfig(cache=True) vs cache-off on twin deployments.",
    )
    state = _fresh_state()
    net, _partition, _fragments, _indexes, max_radius = state
    # Two radius classes from the same seed: identical keyword draws at
    # maxR and maxR/2, so every narrow query is subsumable by its wide
    # sibling's cached entry — the radius-drilldown traffic pattern.
    wide = generate_expressions(
        net, count=POOL_SIZE, radius=max_radius, num_keywords=5,
        seed=17, zipf=ZIPF_EXPONENT,
    )
    narrow = generate_expressions(
        net, count=POOL_SIZE, radius=max_radius / 2, num_keywords=5,
        seed=17, zipf=ZIPF_EXPONENT,
    )
    pool = [e for pair in zip(wide, narrow) for e in pair]
    stream = _zipf_stream(pool, ROUNDS * QUERIES_PER_ROUND, seed=18)

    off_ok, off_wall, off_final, off_stats = _run_deployment(False, pool, stream)
    on_ok, on_wall, on_final, on_stats = _run_deployment(True, pool, stream)

    # The correctness gate, in every mode: after identical update
    # sequences, both deployments answer the whole pool identically.
    assert off_final == on_final
    assert off_stats is None and on_stats is not None
    assert on_stats["hits"] + on_stats["subsumption_hits"] > 0
    assert on_stats["invalidations"] > 0, "churn never reached the cache"

    off_qps = off_ok / off_wall
    on_qps = on_ok / on_wall
    speedup = on_qps / off_qps
    hit_rate = (on_stats["hits"] + on_stats["subsumption_hits"]) / max(
        1, on_stats["hits"] + on_stats["subsumption_hits"] + on_stats["misses"]
    )

    table = Table(
        f"{len(stream)} Zipf({ZIPF_EXPONENT:g}) queries over {POOL_SIZE} shapes, "
        f"{ROUNDS} rounds, {ROUNDS * UPDATES_PER_ROUND} swaps, "
        f"{LINK.latency_seconds * 1e3:g} ms link (AUS)",
        ["serving", "qps", "hit rate", "invalidations"],
    )
    table.add_row("cache off", off_qps, "-", "-")
    table.add_row(
        "cache on", on_qps, f"{hit_rate:.0%}", on_stats["invalidations"]
    )
    table.show()
    print(f"    speedup: {speedup:.2f}x")

    record_benchmark(
        BENCH_FILE,
        {
            "experiment": "semantic_result_cache",
            "zipf_exponent": ZIPF_EXPONENT,
            "pool_size": POOL_SIZE,
            "num_queries": len(stream),
            "rounds": ROUNDS,
            "swaps": ROUNDS * UPDATES_PER_ROUND,
            "fragment_churn": 1 / NUM_FRAGMENTS,
            "link_latency_ms": LINK.latency_seconds * 1e3,
            "cache_off_qps": off_qps,
            "cache_on_qps": on_qps,
            "speedup": speedup,
            "hit_rate": hit_rate,
            "subsumption_hits": on_stats["subsumption_hits"],
            "invalidations": on_stats["invalidations"],
            "stale_rejects": on_stats["stale_rejects"],
            "correctness_only": CORRECTNESS_ONLY,
        },
    )

    if not CORRECTNESS_ONLY:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected the semantic cache ≥{REQUIRED_SPEEDUP}x the uncached "
            f"serve path, got {speedup:.2f}x ({on_qps:.1f} vs {off_qps:.1f} qps)"
        )
