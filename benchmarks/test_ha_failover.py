"""HA serving tier: failover exactness, load-aware routing, scale-out.

Four claims of the replica-group tier (`repro.ha`), on the AUS preset:

1. **Failover is free of wrong answers** — with replication factor 2,
   SIGKILLing one worker mid-run loses *zero* queries: every answer is
   bit-identical to the unkilled reference run (which itself matches
   the centralized oracle), and closed-loop throughput drops by at
   most 25%.
2. **Load-aware routing beats round-robin under skew** — with one
   machine slowed per task (the `machine_delays` knob), busy-second
   routing steers fragment tasks onto the fast replicas; round-robin
   keeps paying the slow machine on half its tasks.
3. **Frontends scale out** — two frontends over the same cluster, each
   with its own asyncio loop, admission gate, and client population,
   clear more queries per second than one.
4. **Idempotency is group-wide** — the same keyed update submitted to
   *both* frontends concurrently applies exactly once.

The numbers land in ``BENCH_ha.json`` at the repo root.  Set
``BENCH_HA_CORRECTNESS_ONLY=1`` (the CI smoke job does) to skip the
timing assertions and run a scaled-down workload; the exactness
assertions — zero wrong answers across a kill, exactly-once applies —
hold in both modes.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from repro.baselines import CentralizedEvaluator
from repro.core import parse_query
from repro.dist import NetworkModel
from repro.ha import FrontendGuard, HACluster, frontend_group
from repro.live import AddKeyword, EpochManager
from repro.serve import ServeClient, ServeConfig, generate_expressions

from common import dataset, engine
from repro.bench_support import Table, print_experiment_header, record_benchmark

CORRECTNESS_ONLY = os.environ.get("BENCH_HA_CORRECTNESS_ONLY") == "1"
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_ha.json"

DATASET = "aus_tiny"
NUM_FRAGMENTS = 8
NUM_MACHINES = 4
NUM_CLIENTS = 4
NUM_QUERIES = 24 if CORRECTNESS_ONLY else 96
LINK = NetworkModel(latency_seconds=2e-3)
MAX_QPS_DROP = 0.25  # the acceptance bound on failover cost
SKEW_DELAY_SECONDS = 0.01  # per-task delay on the slow machine


def _workload():
    deployment = engine(DATASET, NUM_FRAGMENTS)
    expressions = generate_expressions(
        dataset(DATASET).network,
        count=NUM_QUERIES,
        radius=deployment.max_radius * 0.5,
        seed=7,
    )
    queries = [parse_query(expression) for expression in expressions]
    return deployment, queries


def _drive(cluster, queries, *, kill=None, num_clients=NUM_CLIENTS):
    """Closed-loop drive straight at the coordinator.

    ``kill=(machine_id, at_seconds)`` arms a timer that SIGKILLs the
    worker mid-run.  Returns (answers by query index, wall seconds,
    error strings).
    """
    work = list(enumerate(queries))
    answers: dict[int, frozenset[int]] = {}
    errors: list[str] = []
    lock = threading.Lock()

    def _loop() -> None:
        while True:
            with lock:
                if not work:
                    return
                i, query = work.pop()
            try:
                result = frozenset(cluster.execute(query).result_nodes)
            except Exception as error:  # noqa: BLE001 - recorded, asserted on
                with lock:
                    errors.append(f"q{i}: {error}")
                continue
            with lock:
                answers[i] = result
    threads = [
        threading.Thread(target=_loop, name=f"ha-bench-client-{c}")
        for c in range(num_clients)
    ]
    timer = None
    if kill is not None:
        machine_id, at_seconds = kill
        timer = threading.Timer(at_seconds, cluster.kill_worker, args=(machine_id,))
        timer.daemon = True
    started = time.perf_counter()
    if timer is not None:
        timer.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if timer is not None:
        timer.cancel()
    return answers, wall, errors


def test_failover_loses_no_answers():
    print_experiment_header(
        "HA",
        "kill one replica mid-run",
        "R=2 chained declustering; a SIGKILL mid-run must cost zero "
        "wrong or failed queries and at most 25% throughput.",
    )
    deployment, queries = _workload()
    oracle = CentralizedEvaluator(dataset(DATASET).network)
    expected = [frozenset(oracle.results(query)) for query in queries]

    with HACluster.start(
        deployment.fragments,
        deployment.indexes,
        num_machines=NUM_MACHINES,
        replication_factor=2,
    ) as reference:
        reference.execute(queries[0])  # warm the workers
        ref_answers, ref_wall, ref_errors = _drive(reference, queries)

    kill_at = max(0.05, ref_wall / 3)
    with HACluster.start(
        deployment.fragments,
        deployment.indexes,
        num_machines=NUM_MACHINES,
        replication_factor=2,
    ) as killed:
        killed.execute(queries[0])
        answers, wall, errors = _drive(killed, queries, kill=(1, kill_at))
        stats = killed.ha_stats()

    assert not ref_errors and not errors, (ref_errors, errors)
    assert [ref_answers[i] for i in range(len(queries))] == expected
    wrong = [i for i in range(len(queries)) if answers[i] != expected[i]]
    assert not wrong, f"{len(wrong)} answers diverged after the kill: {wrong[:5]}"
    assert stats["dead_machines"] == [1]
    assert stats["failovers"] == 1

    ref_qps = len(queries) / ref_wall
    killed_qps = len(queries) / wall
    drop = 1.0 - killed_qps / ref_qps

    table = Table(
        f"{len(queries)} queries, {NUM_CLIENTS} clients, {NUM_MACHINES} workers "
        f"x2 replication, worker 1 killed at t+{kill_at:.2f}s (AUS)",
        ["run", "qps", "wrong", "failed", "reroutes", "restarts"],
    )
    table.add_row("unkilled reference", ref_qps, 0, 0, 0, 0)
    table.add_row(
        "kill mid-run", killed_qps, len(wrong), len(errors),
        stats["reroutes"], stats["restarts"],
    )
    table.show()
    print(f"    failover throughput cost: {max(drop, 0.0):.1%}")

    record_benchmark(
        BENCH_FILE,
        {
            "experiment": "ha_failover",
            "num_queries": len(queries),
            "num_clients": NUM_CLIENTS,
            "num_machines": NUM_MACHINES,
            "replication_factor": 2,
            "reference_qps": ref_qps,
            "killed_qps": killed_qps,
            "qps_drop": drop,
            "wrong_answers": len(wrong),
            "failed_queries": len(errors),
            "reroutes": stats["reroutes"],
            "restarts": stats["restarts"],
            "correctness_only": CORRECTNESS_ONLY,
        },
    )

    if not CORRECTNESS_ONLY:
        assert drop <= MAX_QPS_DROP, (
            f"failover cost {drop:.1%} exceeds the {MAX_QPS_DROP:.0%} bound "
            f"({killed_qps:.1f} vs {ref_qps:.1f} qps)"
        )


def test_load_aware_routing_beats_round_robin_under_skew():
    print_experiment_header(
        "HA",
        "load-aware vs round-robin routing",
        f"Machine 0 sleeps {SKEW_DELAY_SECONDS * 1e3:g} ms per task; "
        "busy-second routing should route around it.",
    )
    deployment, queries = _workload()
    oracle = CentralizedEvaluator(dataset(DATASET).network)
    expected = [frozenset(oracle.results(query)) for query in queries]

    walls: dict[str, float] = {}
    busy_shares: dict[str, float] = {}
    for routing in ("rr", "load"):
        with HACluster.start(
            deployment.fragments,
            deployment.indexes,
            num_machines=3,
            replication_factor=2,
            routing=routing,
            machine_delays={0: SKEW_DELAY_SECONDS},
        ) as cluster:
            cluster.execute(queries[0])
            answers, wall, errors = _drive(cluster, queries)
            stats = cluster.ha_stats()
        assert not errors, errors
        assert all(answers[i] == expected[i] for i in range(len(queries)))
        walls[routing] = wall
        busy = stats["busy_seconds"]
        busy_shares[routing] = busy[0] / (sum(busy.values()) or 1.0)

    advantage = walls["rr"] / walls["load"]
    table = Table(
        f"{len(queries)} queries, {NUM_CLIENTS} clients, 3 workers x2 "
        "replication, machine 0 skewed (AUS)",
        ["routing", "total (s)", "qps", "slow-machine busy share"],
    )
    for routing in ("rr", "load"):
        table.add_row(
            routing, walls[routing], len(queries) / walls[routing],
            busy_shares[routing],
        )
    table.show()
    print(f"    load-aware advantage: {advantage:.2f}x")

    record_benchmark(
        BENCH_FILE,
        {
            "experiment": "ha_routing_skew",
            "num_queries": len(queries),
            "skew_delay_ms": SKEW_DELAY_SECONDS * 1e3,
            "rr_qps": len(queries) / walls["rr"],
            "load_qps": len(queries) / walls["load"],
            "advantage": advantage,
            "rr_slow_share": busy_shares["rr"],
            "load_slow_share": busy_shares["load"],
            "correctness_only": CORRECTNESS_ONLY,
        },
    )

    # Routing away from the skewed machine is structural: its busy share
    # must shrink under load-aware routing even in smoke mode.
    assert busy_shares["load"] < busy_shares["rr"], (
        f"load-aware routing left machine 0 as busy as round-robin "
        f"({busy_shares['load']:.0%} vs {busy_shares['rr']:.0%})"
    )
    if not CORRECTNESS_ONLY:
        assert advantage > 1.0, (
            f"expected load-aware routing to beat round-robin under skew, "
            f"got {advantage:.2f}x"
        )


def _drive_frontends(frontends, expressions) -> tuple[float, int]:
    """One closed-loop client per frontend; returns (wall, ok count)."""
    shares = [expressions[i :: len(frontends)] for i in range(len(frontends))]
    ok = [0] * len(frontends)

    def _loop(index: int) -> None:
        front = frontends[index]
        with ServeClient(front.host, front.port) as client:
            for expression in shares[index]:
                if client.query(expression).get("ok"):
                    ok[index] += 1

    threads = [
        threading.Thread(target=_loop, args=(i,)) for i in range(len(frontends))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, sum(ok)


def test_two_frontends_outserve_one():
    print_experiment_header(
        "HA",
        "multi-frontend scale-out",
        "Same cluster, emulated link: two frontends with their own "
        "loops, gates, and clients vs one.",
    )
    deployment, _queries = _workload()
    expressions = generate_expressions(
        dataset(DATASET).network,
        count=NUM_QUERIES,
        radius=deployment.max_radius * 0.5,
        seed=7,
    )
    with HACluster.start(
        deployment.fragments,
        deployment.indexes,
        num_machines=NUM_MACHINES,
        replication_factor=2,
        network_model=LINK,
    ) as cluster:
        cluster.execute(_queries[0])
        results: dict[int, tuple[float, int]] = {}
        for count in (1, 2):
            with frontend_group(
                cluster, count=count, config=ServeConfig(port=0)
            ) as frontends:
                results[count] = _drive_frontends(frontends, expressions)

    qps = {count: ok / wall for count, (wall, ok) in results.items()}
    table = Table(
        f"{NUM_QUERIES} queries, one closed-loop client per frontend, "
        f"{LINK.latency_seconds * 1e3:g} ms one-way link (AUS)",
        ["frontends", "ok", "total (s)", "qps"],
    )
    for count, (wall, ok) in sorted(results.items()):
        table.add_row(count, ok, wall, qps[count])
    table.show()
    print(f"    scale-out: {qps[2] / qps[1]:.2f}x")

    assert all(ok == NUM_QUERIES for _wall, ok in results.values())
    record_benchmark(
        BENCH_FILE,
        {
            "experiment": "ha_frontend_scaleout",
            "num_queries": NUM_QUERIES,
            "one_frontend_qps": qps[1],
            "two_frontend_qps": qps[2],
            "scaleout": qps[2] / qps[1],
            "correctness_only": CORRECTNESS_ONLY,
        },
    )
    if not CORRECTNESS_ONLY:
        assert qps[2] > qps[1], (
            f"two frontends should outserve one, got {qps[2]:.1f} vs "
            f"{qps[1]:.1f} qps"
        )


def test_duplicate_updates_apply_exactly_once_across_frontends():
    print_experiment_header(
        "HA",
        "cross-frontend idempotency",
        "The same keyed update raced onto both frontends must apply "
        "exactly once.",
    )
    deployment = engine(DATASET, NUM_FRAGMENTS)
    data = dataset(DATASET)
    manager = EpochManager(
        network=data.network,
        partition=deployment.partition,
        fragments=list(deployment.fragments),
        indexes=list(deployment.indexes),
    )
    nodes = sorted(data.network.object_nodes())
    rounds = 4 if CORRECTNESS_ONLY else 12
    deduped = 0
    with HACluster.start(
        deployment.fragments,
        deployment.indexes,
        num_machines=NUM_MACHINES,
        replication_factor=2,
    ) as cluster:
        manager.bind_cluster(cluster)
        guard = FrontendGuard()
        with frontend_group(
            cluster,
            count=2,
            config=ServeConfig(port=0),
            updater=manager,
            guard=guard,
        ) as frontends:
            for round_id in range(rounds):
                ops = [AddKeyword(nodes[round_id % len(nodes)], f"ha{round_id}")]
                replies: list[dict] = []
                barrier = threading.Barrier(2)

                def _submit(front, replies=replies, ops=ops, round_id=round_id):
                    with ServeClient(front.host, front.port) as client:
                        barrier.wait()
                        reply = client.update(
                            ops,
                            request_id=f"r{round_id}",
                            idempotency_key=f"round-{round_id}",
                        )
                    replies.append(reply)

                threads = [
                    threading.Thread(target=_submit, args=(front,))
                    for front in frontends
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert all(reply["ok"] for reply in replies), replies
                assert manager.epoch == round_id + 1, (
                    f"round {round_id}: duplicate applied twice "
                    f"(epoch {manager.epoch})"
                )
                epochs = {reply["epoch"] for reply in replies}
                assert epochs == {round_id + 1}, replies
                deduped += sum(1 for reply in replies if reply.get("deduped"))
            stats = guard.idempotency.stats()

    table = Table(
        f"{rounds} update rounds, 2 copies each, 2 frontends (AUS)",
        ["submitted", "applied", "deduped", "final epoch"],
    )
    table.add_row(rounds * 2, stats["owned"], stats["deduped"], manager.epoch)
    table.show()

    assert stats["owned"] == rounds
    assert stats["deduped"] == deduped == rounds
    record_benchmark(
        BENCH_FILE,
        {
            "experiment": "ha_idempotency",
            "rounds": rounds,
            "copies_per_round": 2,
            "applied": stats["owned"],
            "deduped": stats["deduped"],
            "final_epoch": manager.epoch,
            "correctness_only": CORRECTNESS_ONLY,
        },
    )
