"""Trace-export smoke: traced queries → valid Chrome trace artifact.

Two claims of the observability layer, checked end to end on the real
pipelined worker processes:

* a traced query yields one assembled span tree — at least one ``task``
  span per involved fragment, with ``queue-wait`` and ``eval`` timings
  under it — exportable to a Chrome trace-event JSON that Perfetto /
  ``chrome://tracing`` loads (``BENCH_trace_chrome.json`` is uploaded
  as a CI artifact next to the other ``BENCH_*`` reports);
* tracing is pay-as-you-go: at the serving default of 1% sampling the
  query stream's wall time stays within noise of the untraced run (the
  untraced wire format only grows a ``None`` placeholder).

The measured overhead ratio lands in the ``BENCH_trace.json``
trajectory; the hard assertion is deliberately loose (CI boxes are
noisy) — the trajectory is what catches drift.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs import Tracer, assemble_tree, write_chrome_trace
from repro.serve import PipelinedCluster
from repro.workloads import QueryGenConfig, QueryGenerator

from common import dataset, engine
from repro.bench_support import Table, print_experiment_header, record_benchmark

NUM_MACHINES = 4
NUM_QUERIES = 40
SAMPLE_RATE = 0.01
OVERHEAD_GUARD = 1.25  # hard ceiling; the acceptance target (1.05) is tracked in BENCH_trace.json

REPO_ROOT = Path(__file__).resolve().parent.parent
CHROME_FILE = REPO_ROOT / "BENCH_trace_chrome.json"
BENCH_FILE = REPO_ROOT / "BENCH_trace.json"


def _query_stream(dataset_name: str, max_radius: float):
    gen = QueryGenerator(dataset(dataset_name).network, QueryGenConfig(seed=11))
    return [
        gen.sgkq(2, max_radius / 3) if i % 3 else gen.rkq(2, max_radius / 2)
        for i in range(NUM_QUERIES)
    ]


def _timed_run(cluster: PipelinedCluster, queries, tracer: Tracer | None) -> tuple[float, list]:
    started = time.perf_counter()
    pendings = []
    for query in queries:
        trace = tracer.maybe_trace() if tracer is not None else None
        if trace is not None:
            pendings.append(cluster.submit(query, trace=trace))
        else:
            pendings.append(cluster.submit(query))
    results = [pending.future.result(timeout=120).result_nodes for pending in pendings]
    return time.perf_counter() - started, results


def test_trace_export_and_sampling_overhead():
    print_experiment_header(
        "OBS",
        "distributed query tracing",
        "Span trees from the pipelined workers, Chrome trace export, "
        "and the cost of 1% sampling.",
    )
    deployment = engine("aus_tiny", 8)
    queries = _query_stream("aus_tiny", deployment.max_radius)

    with PipelinedCluster.start(
        deployment.fragments,
        deployment.indexes,
        num_machines=NUM_MACHINES,
    ) as cluster:
        cluster.execute(queries[0])  # warm the workers

        # -- one fully traced query: structural acceptance ------------
        always = Tracer(sample_rate=1.0)
        traced = cluster.execute(queries[0], trace=always.maybe_trace())
        spans = list(traced.spans)
        roots = assemble_tree(spans)
        assert len(roots) == 1 and roots[0]["name"] == "query"
        task_fragments = {s.fragment_id for s in spans if s.name == "task"}
        expected = {f.fragment_id for f in deployment.fragments}
        assert task_fragments == expected, (task_fragments, expected)
        assert any(s.name == "queue-wait" and s.duration_seconds > 0 for s in spans)
        assert any(s.name == "eval" for s in spans)

        untraced = cluster.execute(queries[0])
        assert untraced.result_nodes == traced.result_nodes

        # -- Chrome trace artifact -------------------------------------
        span_events = write_chrome_trace(
            CHROME_FILE, [{"trace_id": spans[0].trace_id, "spans": [s.to_dict() for s in spans]}]
        )
        loaded = json.loads(CHROME_FILE.read_text())
        assert span_events == len(spans)
        assert {e["ph"] for e in loaded["traceEvents"]} == {"X", "M"}

        # -- overhead of 1% sampling over the stream -------------------
        # Alternate the two configurations across repeats so load spikes
        # hit both; compare best-of rounds like the kernel benchmark.
        base_best = traced_best = float("inf")
        for round_index in range(3):
            base_secs, base_results = _timed_run(cluster, queries, tracer=None)
            sampled = Tracer(sample_rate=SAMPLE_RATE, seed=round_index)
            traced_secs, traced_results = _timed_run(cluster, queries, tracer=sampled)
            assert base_results == traced_results
            base_best = min(base_best, base_secs)
            traced_best = min(traced_best, traced_secs)

    ratio = traced_best / base_best
    table = Table(
        f"{NUM_QUERIES} queries, {NUM_MACHINES} workers, sampling {SAMPLE_RATE:.0%} (AUS)",
        ["configuration", "best total (s)", "throughput (q/s)"],
    )
    table.add_row("tracing off", base_best, NUM_QUERIES / base_best)
    table.add_row(f"sampling {SAMPLE_RATE:.0%}", traced_best, NUM_QUERIES / traced_best)
    table.show()
    print(f"overhead ratio: {ratio:.3f}x (target <=1.05, guard <{OVERHEAD_GUARD})")

    record_benchmark(
        BENCH_FILE,
        {
            "experiment": "trace_export",
            "num_queries": NUM_QUERIES,
            "num_machines": NUM_MACHINES,
            "sample_rate": SAMPLE_RATE,
            "span_events": span_events,
            "untraced_seconds": base_best,
            "sampled_seconds": traced_best,
            "overhead_ratio": ratio,
        },
    )
    assert ratio < OVERHEAD_GUARD, (
        f"1% sampling slowed the stream {ratio:.2f}x (guard {OVERHEAD_GUARD}x)"
    )
