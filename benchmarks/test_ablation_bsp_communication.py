"""Ablation: NPD-index vs the multi-round BSP strawman (§2.3).

The paper motivates the NPD-index by the communication cost general
graph engines pay: every superstep whose relaxations cross a fragment
boundary is network traffic, and rounds grow with the radius in hops.
This bench puts numbers on that: the same query batch through (a) the
NPD engine — one round, coordinator-only bytes — and (b) a Pregel-style
BSP SSSP — many rounds, worker-to-worker bytes.
"""

from __future__ import annotations

import statistics

from repro.baselines import BSPQueryEvaluator

from common import DEFAULT_FRAGMENTS, DEFAULT_LAMBDA, dataset, engine, sgkq_batch
from repro.bench_support import Table, print_experiment_header


def test_ablation_communication_cost(benchmark):
    print_experiment_header(
        "ABLATION",
        "§2.3 communication argument",
        "AUS: NPD (0 worker-to-worker bytes) vs BSP supersteps/messages.",
    )
    deployment = engine("aus_mini", DEFAULT_FRAGMENTS, DEFAULT_LAMBDA)
    bsp = BSPQueryEvaluator(dataset("aus_mini").network, deployment.partition)
    batch = sgkq_batch("aus_mini", 5, deployment.max_radius / 2)

    table = Table(
        "Per-query communication: NPD engine vs BSP baseline (AUS)",
        [
            "query",
            "NPD coord bytes",
            "NPD w2w bytes",
            "BSP supersteps",
            "BSP cross msgs",
            "BSP w2w bytes",
        ],
    )
    supersteps, cross_bytes = [], []
    for i, query in enumerate(batch):
        report = deployment.execute(query)
        bsp_result = bsp.execute(query)
        assert report.result_nodes == bsp_result.result_nodes
        supersteps.append(bsp_result.stats.supersteps)
        cross_bytes.append(bsp_result.stats.cross_worker_bytes)
        table.add_row(
            i,
            report.total_message_bytes,
            0,
            bsp_result.stats.supersteps,
            bsp_result.stats.cross_worker_messages,
            bsp_result.stats.cross_worker_bytes,
        )
    table.show()
    print(
        f"BSP needs {statistics.mean(supersteps):.0f} supersteps and "
        f"{statistics.mean(cross_bytes):,.0f} worker-to-worker bytes per query "
        "on average; the NPD engine needs one round and zero."
    )

    # The headline claim, asserted.
    assert deployment.cluster.ledger.worker_to_worker_bytes() == 0
    assert all(s > 1 for s in supersteps)
    assert all(b > 0 for b in cross_bytes)

    benchmark(lambda: bsp.execute(batch[0]))
