"""Kernel ablation: compiled FragmentKernel vs the dict reference path.

Theorem 5 prices every query in per-term coverage evaluations, so the
per-term constant is the whole system's unit economics.  This benchmark
isolates exactly that constant: one fragment runtime, EXP-3-style SGKQ
term batches (keyword sweep at full ``maxR``), no cluster or transport
in the loop.  The compiled path (:class:`repro.core.kernel.FragmentKernel`
— dense ids, CSR adjacency, precompiled seed lists, generation-stamped
scratch, bounded bucket queue) must beat the reference dict path by
≥2× on a ≥20k-node network while producing *bit-identical* distance
maps, which the verification pass checks term by term before any
timing starts.

Timing methodology: the two evaluators alternate within each round
(reference round, compiled round, repeat) and the best round per path
is compared, so a transient load spike on the CI box penalises one
round, not one evaluator.  GC is paused during timed rounds.

Set ``BENCH_KERNEL_CORRECTNESS_ONLY=1`` (the CI smoke job does) to run
the same differential assertions on a small network and skip the
timing/throughput claims, which need a quiet machine and the full
20k-node build.
"""

from __future__ import annotations

import gc
import os
import time
from pathlib import Path

from repro.core import NPDBuildConfig, build_fragments
from repro.core.builder import build_npd_index
from repro.core.coverage import FragmentRuntime, batch_distance_maps
from repro.graph.generators import GeneratorConfig
from repro.partition import MultilevelPartitioner
from repro.text.zipf import PlacementConfig
from repro.workloads import QueryGenConfig, QueryGenerator
from repro.workloads.datasets import DatasetConfig, build_dataset

from common import KEYWORD_SWEEP
from repro.bench_support import Table, print_experiment_header, record_benchmark

CORRECTNESS_ONLY = os.environ.get("BENCH_KERNEL_CORRECTNESS_ONLY") == "1"
QUERIES_PER_POINT = 3
ROUNDS = 3
REQUIRED_SPEEDUP = 2.0
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

# Full mode: a ~20.6k-node grid (19k junctions + object nodes), the
# smallest network clearly past the ≥20k acceptance floor that still
# builds in seconds.  Smoke mode: same shape, two orders smaller.
if CORRECTNESS_ONLY:
    DATASET = DatasetConfig(
        name="bri_kernel_smoke",
        generator=GeneratorConfig(kind="grid", num_nodes=1_000, seed=51),
        num_objects=120,
        placement=PlacementConfig(
            vocabulary_size=64, num_clusters=8, topic_size=10, seed=52
        ),
        object_seed=53,
    )
else:
    DATASET = DatasetConfig(
        name="bri_kernel",
        generator=GeneratorConfig(kind="grid", num_nodes=19_000, seed=51),
        num_objects=1_600,
        placement=PlacementConfig(
            vocabulary_size=576, num_clusters=24, topic_size=30, seed=52
        ),
        object_seed=53,
    )


def _deployment():
    """Largest fragment of a 2-way partition, with its NPD index."""
    net = build_dataset(DATASET).network
    partition = MultilevelPartitioner(seed=0).partition(net, 2)
    fragments = build_fragments(net, partition)
    fragment = max(fragments, key=lambda f: len(f.members))
    index, _ = build_npd_index(net, fragment, NPDBuildConfig(lambda_factor=40.0))
    return net, fragment, index


def _term_batches(net, max_radius: float):
    """EXP-3-style SGKQ batches: keyword sweep at full maxR."""
    gen = QueryGenerator(net, QueryGenConfig(seed=7))
    return [
        query.terms
        for k in KEYWORD_SWEEP
        for query in gen.sgkq_batch(QUERIES_PER_POINT, k, max_radius)
    ]


def _evaluate_all(runtime: FragmentRuntime, batches) -> list:
    maps = []
    for terms in batches:
        maps.extend(batch_distance_maps(runtime, terms))
    return maps


def _best_of_interleaved(runtimes: dict[str, FragmentRuntime], batches) -> dict[str, float]:
    """Best round per evaluator, evaluators alternating inside each round."""
    best = {name: float("inf") for name in runtimes}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(ROUNDS):
            for name, runtime in runtimes.items():
                started = time.perf_counter()
                _evaluate_all(runtime, batches)
                best[name] = min(best[name], time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def test_compiled_kernel_speedup(benchmark):
    print_experiment_header(
        "KERNEL",
        "Theorem 5 per-term constant",
        "Per-term coverage evaluation on one fragment runtime: compiled "
        "flat-array kernel vs the reference dict path, identical maps "
        "required.",
    )
    net, fragment, index = _deployment()
    num_nodes = len(list(net.nodes()))
    if not CORRECTNESS_ONLY:
        assert num_nodes >= 20_000  # the acceptance floor for the claim

    reference = FragmentRuntime(fragment, index, compiled=False)
    compiled = FragmentRuntime(fragment, index, compiled=True)
    batches = _term_batches(net, index.max_radius)
    num_terms = sum(len(terms) for terms in batches)

    # Differential verification (and warm-up): every term, bit-identical
    # maps on the bucket-queue path and the binary-heap fallback.
    expected = _evaluate_all(reference, batches)
    assert _evaluate_all(compiled, batches) == expected
    heap_forced = FragmentRuntime(fragment, index, compiled=True)
    heap_forced.kernel.bucket_limit = -1
    assert _evaluate_all(heap_forced, batches) == expected

    if CORRECTNESS_ONLY:
        benchmark(lambda: _evaluate_all(compiled, batches))
        return

    best = _best_of_interleaved(
        {"reference": reference, "compiled": compiled}, batches
    )
    ref_secs, com_secs = best["reference"], best["compiled"]
    speedup = ref_secs / com_secs

    table = Table(
        f"{num_terms} SGKQ coverage terms, |P|={len(fragment.members):,} "
        f"of {num_nodes:,} nodes, r=maxR={index.max_radius:.1f}, "
        f"best of {ROUNDS} interleaved rounds",
        ["evaluator", "total (s)", "terms/s", "vs reference"],
    )
    table.add_row("reference", ref_secs, num_terms / ref_secs, 1.0)
    table.add_row("compiled", com_secs, num_terms / com_secs, speedup)
    table.show()

    record_benchmark(
        BENCH_FILE,
        {
            "experiment": "kernel_speedup",
            "network_nodes": num_nodes,
            "fragment_nodes": len(fragment.members),
            "max_radius": index.max_radius,
            "num_terms": num_terms,
            "rounds": ROUNDS,
            "reference_seconds": round(ref_secs, 4),
            "compiled_seconds": round(com_secs, 4),
            "reference_terms_per_second": round(num_terms / ref_secs, 1),
            "compiled_terms_per_second": round(num_terms / com_secs, 1),
            "speedup": round(speedup, 2),
        },
    )

    # The headline claim: the compiled kernel is ≥2× the dict path.
    assert ref_secs >= REQUIRED_SPEEDUP * com_secs, (
        f"expected compiled ≥{REQUIRED_SPEEDUP:g}× reference, got "
        f"{ref_secs:.3f}s vs {com_secs:.3f}s ({speedup:.2f}x)"
    )

    benchmark(lambda: _evaluate_all(compiled, batches))
