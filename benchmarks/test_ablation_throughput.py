"""Ablation: query throughput vs fragment count (the paper's §1 motivation).

"Many applications … may need to handle heavy query load … it is
natural to develop distributed techniques … to improve the throughput
of query processing."  This bench replays the same open-loop query
stream against deployments of 1–16 fragments and reports sustained
throughput and tail latency.
"""

from __future__ import annotations

from repro.workloads import WorkloadDriver, WorkloadSpec

from common import DEFAULT_LAMBDA, engine
from repro.bench_support import Table, print_experiment_header

SPEC = WorkloadSpec(
    num_queries=25,
    arrival_rate_qps=10_000.0,  # saturating load: measures capacity
    rkq_fraction=0.2,
    min_keywords=3,
    max_keywords=7,
    seed=42,
)


def test_ablation_throughput_vs_fragments(benchmark):
    print_experiment_header(
        "ABLATION",
        "§1 throughput motivation",
        "AUS: sustained throughput of the same saturating stream vs #fragments.",
    )
    table = Table(
        "Open-loop replay, 25 mixed queries at saturating load (AUS)",
        ["#fragments", "throughput (q/s)", "p50 (ms)", "p95 (ms)"],
    )
    throughputs = []
    for fragments in (1, 4, 16):
        deployment = engine("aus_mini", fragments, DEFAULT_LAMBDA)
        report = WorkloadDriver(deployment, SPEC).replay()
        throughputs.append(report.throughput_qps)
        table.add_row(fragments, report.throughput_qps, report.p50_ms, report.p95_ms)
    table.show()

    # More fragments -> more capacity under the same stream.
    assert throughputs[-1] > throughputs[0] * 1.5, (
        f"16 fragments should outpace 1 fragment: {throughputs}"
    )

    deployment = engine("aus_mini", 16, DEFAULT_LAMBDA)
    driver = WorkloadDriver(deployment, SPEC)
    stream = driver.generate()
    benchmark(lambda: driver.replay(stream))
