"""Data-plane ablation: zero-copy shm + binary wire vs pickle + NDJSON.

Two ends of the data plane changed and this benchmark measures both on
the same deployment and the same emulated link:

* **startup**: workers used to receive their fragments as pickled
  ``(Fragment, NPDIndex)`` pairs; with ``use_shm`` they receive a
  few-hundred-byte segment manifest and attach the CSR arrays read-only
  from shared memory (:mod:`repro.shm`).  Measured as bytes shipped per
  worker at fork time (``cluster.startup_bytes``).
* **query path**: NDJSON frontend + pickled worker pipes vs the DSKW
  binary frames of :mod:`repro.serve.wire` end to end (client → TCP
  frontend → worker pipe), with queries prepared once per connection
  and ``BATCH_SIZE`` of them packed per frame.  Measured as closed-loop
  loadgen throughput through a real socket.

The workload uses a small radius on purpose: cheap point-ish queries
are the regime where the wire overhead (text parse, JSON, pickle,
per-query socket writes) is the cost being measured rather than the
kernel's graph traversal, which is identical on both paths.  Each path
reports its best-of-``ROUNDS`` closed-loop run — single-core CI boxes
are noisy, and the max is the least contaminated estimate of the
protocol's capacity.

The numbers land in ``BENCH_wire.json`` at the repo root.  Set
``BENCH_WIRE_CORRECTNESS_ONLY=1`` (the CI smoke job does) to skip the
timing assertion while still proving both paths return identical
answers and the ≥10× startup-bytes reduction (which is structural, not
timing-dependent).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.dist import NetworkModel
from repro.serve import (
    BinaryServeClient,
    PipelinedCluster,
    ServeClient,
    ServeConfig,
    generate_expressions,
    run_loadgen,
    serve_in_thread,
)

from common import dataset, engine
from repro.bench_support import Table, print_experiment_header, record_benchmark

CORRECTNESS_ONLY = os.environ.get("BENCH_WIRE_CORRECTNESS_ONLY") == "1"
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_wire.json"

NUM_MACHINES = 4
NUM_CLIENTS = 4
BATCH_SIZE = 16
RADIUS_DIVISOR = 16
NUM_QUERIES = 16 if CORRECTNESS_ONLY else 192
ROUNDS = 1 if CORRECTNESS_ONLY else 4
DIFF_QUERIES = 12
REQUIRED_SPEEDUP = 1.3
REQUIRED_BYTES_DROP = 10.0
LINK = NetworkModel()  # the paper's link: 100 Mb/s switch, sub-ms LAN hop
SERVE = ServeConfig(max_inflight=128, query_timeout_seconds=60.0)


def _deployment():
    built = engine("aus_tiny", 8)
    net = dataset("aus_tiny").network
    expressions = generate_expressions(
        net, count=NUM_QUERIES, radius=built.max_radius / RADIUS_DIVISOR, seed=11
    )
    return built, expressions


def _run_path(built, expressions, *, use_shm: bool, pipe_wire: str, protocol: str, batch: int):
    """One full stack: cluster → TCP frontend → closed-loop loadgen."""
    cluster = PipelinedCluster.start(
        built.fragments,
        built.indexes,
        num_machines=NUM_MACHINES,
        network_model=LINK,
        use_shm=use_shm,
        pipe_wire=pipe_wire,
    )
    try:
        startup_bytes = sum(cluster.startup_bytes)
        with serve_in_thread(cluster, SERVE) as server:
            # Warm both the workers and the accept path.
            with ServeClient(server.host, server.port) as warm:
                warm.query(expressions[0])
            best = None
            for _ in range(ROUNDS):
                report = run_loadgen(
                    server.host,
                    server.port,
                    expressions,
                    num_clients=NUM_CLIENTS,
                    protocol=protocol,
                    batch=batch,
                )
                assert report.ok == len(expressions), (report.shed, report.errors)
                if best is None or report.throughput_qps > best.throughput_qps:
                    best = report
            # Per-expression answers for the differential check.
            client_cls = BinaryServeClient if protocol == "binary" else ServeClient
            answers = []
            with client_cls(server.host, server.port) as client:
                for expression in expressions[:DIFF_QUERIES]:
                    answers.append(sorted(client.query(expression)["nodes"]))
        return best, startup_bytes, answers
    finally:
        cluster.shutdown()


def _measure(built, expressions):
    baseline, baseline_bytes, baseline_answers = _run_path(
        built, expressions, use_shm=False, pipe_wire="pickle",
        protocol="ndjson", batch=1,
    )
    fast, fast_bytes, fast_answers = _run_path(
        built, expressions, use_shm=True, pipe_wire="binary",
        protocol="binary", batch=BATCH_SIZE,
    )
    assert baseline_answers == fast_answers
    return baseline, baseline_bytes, fast, fast_bytes


def test_binary_shm_path_beats_pickle_ndjson():
    print_experiment_header(
        "WIRE",
        "zero-copy data plane",
        "Same workers, same queries, same emulated link: shm segments + "
        "DSKW binary frames vs pickled fragments + NDJSON.",
    )
    built, expressions = _deployment()

    attempts = 1 if CORRECTNESS_ONLY else 2
    for attempt in range(attempts):
        baseline, baseline_bytes, fast, fast_bytes = _measure(built, expressions)
        speedup = fast.throughput_qps / baseline.throughput_qps
        if CORRECTNESS_ONLY or speedup >= REQUIRED_SPEEDUP:
            break
        # One re-measure: closed-loop qps on a shared single-core box is
        # at the mercy of co-tenant load; both paths rerun, never one.

    bytes_drop = baseline_bytes / fast_bytes

    table = Table(
        f"{NUM_QUERIES} queries, {NUM_CLIENTS} clients, {NUM_MACHINES} workers, "
        f"maxR/{RADIUS_DIVISOR}, paper link (AUS)",
        ["data plane", "qps", "p99 (ms)", "startup B/cluster"],
    )
    table.add_row(
        "pickle + NDJSON", baseline.throughput_qps,
        baseline.percentile(0.99) * 1e3, baseline_bytes,
    )
    table.add_row(
        f"shm + binary (batch {BATCH_SIZE})", fast.throughput_qps,
        fast.percentile(0.99) * 1e3, fast_bytes,
    )
    table.show()
    print(f"    end-to-end speedup: {speedup:.2f}x   startup bytes: {bytes_drop:.1f}x smaller")

    # The startup claim is structural — assert it even in smoke mode.
    assert bytes_drop >= REQUIRED_BYTES_DROP, (
        f"expected ≥{REQUIRED_BYTES_DROP}x fewer startup bytes, got "
        f"{baseline_bytes} vs {fast_bytes} ({bytes_drop:.1f}x)"
    )

    record_benchmark(
        BENCH_FILE,
        {
            "experiment": "wire_data_plane",
            "num_queries": NUM_QUERIES,
            "num_clients": NUM_CLIENTS,
            "batch_size": BATCH_SIZE,
            "rounds": ROUNDS,
            "link_latency_ms": LINK.latency_seconds * 1e3,
            "baseline_qps": baseline.throughput_qps,
            "binary_qps": fast.throughput_qps,
            "speedup": speedup,
            "baseline_startup_bytes": baseline_bytes,
            "shm_startup_bytes": fast_bytes,
            "startup_bytes_drop": bytes_drop,
            "correctness_only": CORRECTNESS_ONLY,
        },
    )

    if not CORRECTNESS_ONLY:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected the binary+shm path ≥{REQUIRED_SPEEDUP}x the "
            f"pickle+NDJSON path, got {speedup:.2f}x "
            f"({fast.throughput_qps:.1f} vs {baseline.throughput_qps:.1f} qps)"
        )
