"""Ablation: the NPD engine vs the §3.6 partition-based scheme, and the
simulated cluster vs real OS-process workers.

* The BLINKS/HiTi-style portal-graph index is exact and competitive as a
  *centralized* method — but its evaluation runs over a single global
  portal graph, which is the paper's argument for why that family cannot
  be distributed share-nothing.  The bench compares query times, index
  sizes and the global-vs-local work split.
* The process-cluster bench validates the simulation methodology: real
  concurrent workers answer identically, and their wall time tracks the
  simulated makespan rather than the serial total.
"""

from __future__ import annotations

import statistics

from repro.baselines import PortalGraphIndex, PortalGraphStats
from repro.dist import ProcessCluster
from repro.storage import index_file_size

from common import DEFAULT_FRAGMENTS, dataset, engine, sgkq_batch
from repro.bench_support import Table, print_experiment_header

LAMBDA = 20.0


def test_ablation_portal_graph_baseline(benchmark):
    print_experiment_header(
        "ABLATION",
        "§3.6 partition-based comparison",
        "AUS: NPD engine vs a BLINKS/HiTi-style centralized portal-graph index.",
    )
    deployment = engine("aus_mini", DEFAULT_FRAGMENTS, LAMBDA)
    portal_index = PortalGraphIndex(dataset("aus_mini").network, deployment.partition)
    batch = sgkq_batch("aus_mini", 5, deployment.max_radius / 2)

    npd_ms, pg_ms, global_share = [], [], []
    for query in batch:
        report = deployment.execute(query)
        result, stats, seconds = portal_index.execute(query)
        assert result == report.result_nodes  # third oracle agrees
        npd_ms.append(report.response_seconds * 1000)
        pg_ms.append(seconds * 1000)
        total = stats.local_settled + stats.portal_graph_settled
        global_share.append(stats.portal_graph_settled / total if total else 0.0)

    npd_size = statistics.mean(index_file_size(i) for i in deployment.indexes) / 1024
    table = Table(
        "NPD vs portal-graph (AUS, 16 fragments, maxR=20e)",
        ["metric", "NPD engine", "portal-graph (centralized)"],
    )
    table.add_row("mean query time (ms)", statistics.mean(npd_ms), statistics.mean(pg_ms))
    table.add_row("index distances / machine", deployment.indexes[0].num_recorded_distances,
                  portal_index.num_recorded_distances)
    table.add_row("per-machine size (KiB)", npd_size, "n/a (single global index)")
    table.add_row("global-structure work share", "0 (Theorem 3)",
                  f"{statistics.mean(global_share):.0%} of settles")
    table.show()

    # The §3.6 argument, quantified: a meaningful share of the portal-
    # graph method's work happens on the global structure.
    assert statistics.mean(global_share) > 0.01
    assert deployment.cluster.ledger.worker_to_worker_bytes() == 0

    benchmark(lambda: portal_index.results(batch[0]))


def test_ablation_process_cluster_validates_simulation(benchmark):
    print_experiment_header(
        "ABLATION",
        "simulation methodology",
        "AUS: simulated makespan vs real OS-process workers, same queries.",
    )
    deployment = engine("aus_mini", 8, LAMBDA)
    batch = sgkq_batch("aus_mini", 5, deployment.max_radius / 2)

    with ProcessCluster.start(
        list(deployment.fragments), list(deployment.indexes), num_machines=8
    ) as cluster:
        cluster.execute(batch[0])  # warm-up (imports, allocator)
        table = Table(
            "Simulated vs real execution (AUS, 8 fragments)",
            ["query", "simulated response (ms)", "real wall (ms)", "serial total (ms)"],
        )
        for i, query in enumerate(batch):
            report = deployment.execute(query)
            real = cluster.execute(query)
            assert real.result_nodes == report.result_nodes
            table.add_row(
                i,
                report.response_seconds * 1000,
                real.wall_seconds * 1000,
                report.total_task_seconds * 1000,
            )
        table.show()

        real_wall = []
        serial = []
        for query in batch:
            report = deployment.execute(query)
            serial.append(report.total_task_seconds * 1000)
            real_wall.append(cluster.execute(query).wall_seconds * 1000)
        # Real concurrency should beat the serial total on average once
        # per-query work is non-trivial (IPC overhead bounds the rest).
        assert statistics.mean(real_wall) < statistics.mean(serial) * 2.0

        benchmark(lambda: cluster.execute(batch[0]))
