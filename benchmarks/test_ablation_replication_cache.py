"""Ablation: replication under failures, and the coverage cache.

* **Chaos sweep** — a replicated deployment keeps answering (exactly)
  while machines fail, up to ``replication_factor - 1`` concurrent
  losses; response time degrades gracefully as survivors absorb load.
* **Coverage cache** — repeated-workload speedup from the per-fragment
  LRU of coverage distance maps.
"""

from __future__ import annotations

import statistics
import time

from repro import DisksEngine, EngineConfig
from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.dist import ReplicatedCluster
from repro.partition import MultilevelPartitioner

from common import DEFAULT_FRAGMENTS, dataset, engine, sgkq_batch
from repro.bench_support import Table, print_experiment_header

LAMBDA = 20.0


def test_ablation_replication_chaos(benchmark):
    print_experiment_header(
        "ABLATION",
        "replication under failures",
        "AUS, 8 machines, replication 3: response vs concurrent machine losses.",
    )
    net = dataset("aus_mini").network
    partition = MultilevelPartitioner(seed=0).partition(net, 8)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(net, fragments, NPDBuildConfig(lambda_factor=LAMBDA))
    cluster = ReplicatedCluster.from_fragments(
        fragments, indexes, num_machines=8, replication_factor=3
    )
    batch = sgkq_batch("aus_mini", 5, indexes[0].max_radius / 2)
    healthy = [cluster.execute(q).result_nodes for q in batch]

    table = Table(
        "Replicated cluster under failures (AUS)",
        ["failed machines", "mean response (ms)", "answers exact"],
    )
    for failures in (0, 1, 2):
        for victim in range(failures):
            cluster.fail_machine(victim)
        responses = [cluster.execute(q) for q in batch]
        exact = all(
            r.result_nodes == expected for r, expected in zip(responses, healthy)
        )
        ms = statistics.mean(r.response_seconds for r in responses) * 1000
        table.add_row(failures, ms, exact)
        assert exact, f"answers must stay exact with {failures} failures"
        for victim in range(failures):
            cluster.restore_machine(victim)
    table.show()
    assert cluster.ledger.worker_to_worker_bytes() == 0

    benchmark(lambda: cluster.execute(batch[0]))


def test_ablation_coverage_cache(benchmark):
    print_experiment_header(
        "ABLATION",
        "coverage cache",
        "AUS: repeated query batch with and without the per-fragment LRU.",
    )
    net = dataset("aus_mini").network
    cold = engine("aus_mini", DEFAULT_FRAGMENTS, LAMBDA)
    warm = DisksEngine.build(
        net,
        EngineConfig(
            num_fragments=DEFAULT_FRAGMENTS,
            lambda_factor=LAMBDA,
            coverage_cache_capacity=64,
            partitioner=MultilevelPartitioner(seed=0),
        ),
    )
    batch = sgkq_batch("aus_mini", 5, cold.max_radius / 2)

    def run(deployment) -> float:
        started = time.perf_counter()
        for _ in range(3):  # the repetition a real workload exhibits
            for query in batch:
                deployment.execute(query)
        return (time.perf_counter() - started) * 1000

    no_cache_ms = run(cold)
    _prime = run(warm)
    cached_ms = run(warm)

    table = Table(
        "3x repeated batch of 5 SGKQs (AUS, 16 fragments)",
        ["configuration", "total (ms)"],
    )
    table.add_row("no cache", no_cache_ms)
    table.add_row("LRU cache (64 entries/fragment)", cached_ms)
    table.show()

    for query in batch:  # correctness under caching
        assert warm.results(query) == cold.results(query)
    assert cached_ms < no_cache_ms, "cache hits should beat recomputation"

    benchmark(lambda: warm.execute(batch[0]))
