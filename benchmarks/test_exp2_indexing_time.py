"""EXP 2 (Table 3): per-fragment indexing time.

Paper (AUS): indexing time per fragment falls as the fragment count
rises (6.2–25.8 minutes over their sweep) and grows with maxR; the
process is offline and fragment-parallel.

Reproduced as mean per-fragment construction seconds over the
``#fragments × maxR`` grid on the scaled AUS dataset.
"""

from __future__ import annotations

import statistics

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments, build_npd_index
from repro.partition import MultilevelPartitioner

from common import dataset
from repro.bench_support import Table, print_experiment_header

MAXR_COLUMNS = (10.0, 20.0, 40.0)
FRAGMENT_ROWS = (4, 8, 12, 16)


def _per_fragment_seconds(num_fragments: int, lam: float) -> float:
    net = dataset("aus_mini").network
    partition = MultilevelPartitioner(seed=0).partition(net, num_fragments)
    fragments = build_fragments(net, partition)
    _indexes, stats = build_all_indexes(
        net, fragments, NPDBuildConfig(lambda_factor=lam)
    )
    return statistics.mean(s.wall_seconds for s in stats)


def test_exp2_table3_indexing_time(benchmark):
    print_experiment_header(
        "EXP 2",
        "Table 3",
        "Per-fragment indexing time (seconds) on AUS, by #fragments and maxR.",
    )
    table = Table(
        "Table 3 — indexing time per fragment (seconds, AUS)",
        ["#fragments"] + [f"maxR={int(l)}e" for l in MAXR_COLUMNS],
    )
    grid: dict[tuple[int, float], float] = {}
    for rows in FRAGMENT_ROWS:
        row: list[object] = [rows]
        for lam in MAXR_COLUMNS:
            seconds = _per_fragment_seconds(rows, lam)
            grid[(rows, lam)] = seconds
            row.append(seconds)
        table.add_row(*row)
    table.show()

    # Paper shape 1: more fragments -> less time per fragment (at default maxR).
    col = [grid[(rows, 40.0)] for rows in FRAGMENT_ROWS]
    assert col[0] > col[-1], f"per-fragment time should fall with #fragments: {col}"
    # Paper shape 2: larger maxR -> more time (at default #fragments).
    row16 = [grid[(16, lam)] for lam in MAXR_COLUMNS]
    assert row16[0] < row16[-1], f"time should grow with maxR: {row16}"

    # Register one representative unit: a single fragment's build.
    net = dataset("aus_mini").network
    partition = MultilevelPartitioner(seed=0).partition(net, 16)
    fragments = build_fragments(net, partition)
    config = NPDBuildConfig(lambda_factor=10.0)
    benchmark(lambda: build_npd_index(net, fragments[0], config))
