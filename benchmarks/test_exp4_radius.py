"""EXP 4 (Fig. 14, Fig. 15): effect of the query radius r.

Paper: response time grows with r (a larger r means a larger keyword
coverage), and r affects the distributed method far less than the
centralized one — "this reflects the robustness of our method".

Reproduced for r ∈ {maxR/4, maxR/3, maxR/2, maxR} at the Table-2
defaults on both datasets.
"""

from __future__ import annotations

from common import (
    DEFAULT_FRAGMENTS,
    DEFAULT_KEYWORDS,
    DEFAULT_LAMBDA,
    engine,
    mean_centralized_ms,
    mean_distributed_ms,
    sgkq_batch,
    warm_up,
)
from repro.bench_support import Table, print_experiment_header

RADIUS_FRACTIONS = ((0.25, "maxR/4"), (1 / 3, "maxR/3"), (0.5, "maxR/2"), (1.0, "maxR"))


def _run(dataset_name: str, figure: str, benchmark) -> None:
    print_experiment_header(
        "EXP 4",
        figure,
        f"{dataset_name}: SGKQ time vs radius r; 16 fragments, 7 keywords.",
    )
    deployment = engine(dataset_name, DEFAULT_FRAGMENTS, DEFAULT_LAMBDA)
    warm_up(deployment, dataset_name)
    table = Table(
        f"{figure} — mean query time (ms), {dataset_name}",
        ["r", "distributed (16 frags)", "1 fragment", "ratio"],
    )
    distributed, central = [], []
    for fraction, label in RADIUS_FRACTIONS:
        radius = deployment.max_radius * fraction
        batch = sgkq_batch(dataset_name, DEFAULT_KEYWORDS, radius)
        d = mean_distributed_ms(deployment, batch)
        c = mean_centralized_ms(dataset_name, batch)
        distributed.append(d)
        central.append(c)
        table.add_row(label, d, c, c / d if d else float("inf"))
    table.show()

    # Paper shapes: both grow with r, and r affects the distributed
    # method much less than the centralized one (robustness claim) —
    # compare the absolute slowdown from maxR/4 to maxR.
    assert distributed[-1] >= distributed[0]
    assert central[-1] > central[0]
    dist_delta = distributed[-1] - distributed[0]
    central_delta = central[-1] - central[0]
    assert dist_delta < central_delta, (
        f"radius should cost the distributed method less: +{dist_delta:.1f}ms "
        f"distributed vs +{central_delta:.1f}ms centralized"
    )

    batch = sgkq_batch(dataset_name, DEFAULT_KEYWORDS, deployment.max_radius / 2)
    benchmark(lambda: [deployment.execute(q) for q in batch])


def test_exp4_fig14_bri(benchmark):
    _run("bri_mini", "Fig. 14 (BRI)", benchmark)


def test_exp4_fig15_aus(benchmark):
    _run("aus_mini", "Fig. 15 (AUS)", benchmark)
