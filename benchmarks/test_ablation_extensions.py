"""Ablation: the extension features built on the NPD-index.

* **Top-k** (§8 future work) — cost vs k, and vs an equivalent-radius
  coverage query.
* **Incremental maintenance** — patching a keyword in vs rebuilding the
  fragment indexes from scratch.
* **Theorem-5 cost model** — predicted operation counts vs measured
  task times across a query batch (rank correlation).
"""

from __future__ import annotations

import statistics
import time

from repro.core import (
    KeywordMaintainer,
    KeywordSource,
    NPDBuildConfig,
    TopKQuery,
    build_all_indexes,
    build_npd_index,
    theorem5_cost,
)

from common import DEFAULT_FRAGMENTS, dataset, engine, sgkq_batch
from repro.bench_support import Table, print_experiment_header

LAMBDA = 20.0


def test_ablation_topk_cost(benchmark):
    print_experiment_header(
        "ABLATION",
        "§8 top-k extension",
        "AUS: top-k nearest-keyword query cost vs k.",
    )
    deployment = engine("aus_mini", DEFAULT_FRAGMENTS, LAMBDA)
    keyword = dataset("aus_mini").frequent_keywords(1)[0]
    radius = deployment.max_radius

    table = Table("Top-k query time (ms) vs k, AUS", ["k", "time (ms)", "saturated"])
    for k in (1, 10, 100, 1000):
        query = TopKQuery(KeywordSource(keyword), k, radius)
        started = time.perf_counter()
        result = deployment.top_k(query)
        ms = (time.perf_counter() - started) * 1000
        table.add_row(k, ms, result.saturated)
        # Ranking is sorted and within the radius.
        dists = [d for _n, d in result.ranking]
        assert dists == sorted(dists)
        assert all(d <= radius for d in dists)
    table.show()

    benchmark(lambda: deployment.top_k(TopKQuery(KeywordSource(keyword), 10, radius)))


def test_ablation_incremental_maintenance_vs_rebuild(benchmark):
    print_experiment_header(
        "ABLATION",
        "incremental maintenance",
        "AUS: patching one keyword update vs rebuilding all fragment indexes.",
    )
    deployment = engine("aus_mini", DEFAULT_FRAGMENTS, LAMBDA)
    net = dataset("aus_mini").network
    # Build fresh index copies so the memoised engine stays pristine.
    fresh_indexes = [
        build_npd_index(net, fragment, NPDBuildConfig(lambda_factor=LAMBDA))[0]
        for fragment in deployment.fragments
    ]
    maintainer = KeywordMaintainer(
        net, deployment.partition, list(deployment.fragments), fresh_indexes
    )
    node = next(iter(net.object_nodes()))

    started = time.perf_counter()
    maintainer.add_keyword(node, "bench-kw")
    patch_seconds = time.perf_counter() - started

    started = time.perf_counter()
    build_all_indexes(
        maintainer.network, maintainer.fragments, NPDBuildConfig(lambda_factor=LAMBDA)
    )
    rebuild_seconds = time.perf_counter() - started

    table = Table(
        "One keyword addition: incremental patch vs full rebuild (AUS)",
        ["approach", "seconds"],
    )
    table.add_row("incremental patch", patch_seconds)
    table.add_row("full rebuild", rebuild_seconds)
    table.show()

    assert patch_seconds < rebuild_seconds / 5, (
        f"patching ({patch_seconds:.3f}s) should beat rebuilding "
        f"({rebuild_seconds:.3f}s) comfortably"
    )

    benchmark(lambda: maintainer.add_keyword(node, "bench-kw"))  # idempotent no-op path


def test_ablation_theorem5_cost_model(benchmark):
    print_experiment_header(
        "ABLATION",
        "Theorem 5 cost model",
        "AUS: predicted per-fragment operation count vs measured task time.",
    )
    deployment = engine("aus_mini", DEFAULT_FRAGMENTS, LAMBDA)
    batch = sgkq_batch("aus_mini", 7, deployment.max_radius, seed=5)

    predictions: list[float] = []
    measurements: list[float] = []
    for query in batch:
        report = deployment.execute(query)
        keywords = query.keywords()
        for index in deployment.indexes:
            fragment_id = index.fragment_id
            sizes = report.coverage_sizes[fragment_id]
            predictions.append(theorem5_cost(index, keywords, list(sizes)))
            measurements.append(report.fragment_seconds[fragment_id])

    # Spearman rank correlation, computed by hand (no scipy dependency
    # needed here, though it is available).
    def ranks(values: list[float]) -> list[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        for rank, i in enumerate(order):
            result[i] = float(rank)
        return result

    rp, rm = ranks(predictions), ranks(measurements)
    n = len(rp)
    mean_p, mean_m = statistics.mean(rp), statistics.mean(rm)
    cov = sum((a - mean_p) * (b - mean_m) for a, b in zip(rp, rm)) / n
    var_p = sum((a - mean_p) ** 2 for a in rp) / n
    var_m = sum((b - mean_m) ** 2 for b in rm) / n
    rho = cov / (var_p * var_m) ** 0.5

    table = Table("Theorem-5 model fidelity", ["samples", "Spearman rho"])
    table.add_row(n, rho)
    table.show()

    assert rho > 0.5, f"cost model should rank fragment costs usefully, rho={rho:.2f}"

    query = batch[0]
    benchmark(lambda: deployment.execute(query))
