"""Tail retention vs head sampling, and the cost of the full obs stack.

Three claims of the observability phase-2 work, checked end to end on
the real serving stack:

* tail-based retention captures what head sampling misses: ≥90% of the
  queries above the stream's p99 keep a full span tree (head sampling
  at the serving default of 1% catches ~1 in 100 of them), and 100% of
  errored and HA-rerouted queries are retained — audited both through
  the replies' ``trace_id`` and the policy's own triggered/retained
  counters;
* retained traces are complete: one ``query`` root, ``dispatch`` /
  ``task`` / ``eval`` spans, all closed;
* the always-trace + decide-later pipeline plus the SLO burn-rate
  engine stay cheap at realistic query sizes: on ``bri_mini``
  (~37 ms/query) the closed-loop stream's best-of-rounds wall time
  lands within noise of a bare server (target ≤1.02x, tracked in
  ``BENCH_slo.json``; the hard guard here is loose because CI boxes
  are noisy).  On the micro dataset the same spans cost ~1 ms/query
  flat, so the ratio there is meaningless — the overhead is per-span
  serialization, not per-byte of query work.

Set ``BENCH_SLO_CORRECTNESS_ONLY=1`` (the CI smoke job does) to skip
the timing comparison while still proving the retention and
completeness properties, which are structural.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.core import parse_query
from repro.ha import HACluster
from repro.obs import assemble_tree
from repro.serve import (
    PipelinedCluster,
    ServeClient,
    ServeConfig,
    render_query,
    serve_in_thread,
)
from repro.workloads import QueryGenConfig, QueryGenerator

from common import dataset, engine
from repro.bench_support import Table, print_experiment_header, record_benchmark

CORRECTNESS_ONLY = os.environ.get("BENCH_SLO_CORRECTNESS_ONLY") == "1"

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_slo.json"

NUM_MACHINES = 4
# The dynamic threshold's p99 gate engages after 100 samples; the
# warmup stream pumps it past that before the measured stream starts.
WARMUP = 100
NUM_QUERIES = 120
TIMING_DATASET = "bri_mini"
TIMING_QUERIES = 24
ROUNDS = 1 if CORRECTNESS_ONLY else 3
CAPTURE_TARGET = 0.90
OVERHEAD_GUARD = 1.25  # hard ceiling; the target (1.02) lives in BENCH_slo.json


def _expressions(dataset_name: str, max_radius: float, count: int, seed: int):
    gen = QueryGenerator(dataset(dataset_name).network, QueryGenConfig(seed=seed))
    return [
        render_query(gen.sgkq(2, max_radius / 3) if i % 3 else gen.rkq(2, max_radius / 2))
        for i in range(count)
    ]


def _warmup_expressions(dataset_name: str, max_radius: float):
    # One cheap expression repeated: engages the p99 gate (100 samples)
    # with a low-variance latency floor, so the varied stream that
    # follows owns the window's tail and the capture audit below is
    # deterministic rather than hostage to warmup noise.
    gen = QueryGenerator(dataset(dataset_name).network, QueryGenConfig(seed=5))
    return [render_query(gen.rkq(1, max_radius / 8))] * WARMUP


def _p99(values):
    ordered = sorted(values)
    return ordered[int(0.99 * (len(ordered) - 1))]


def _assert_full_span_tree(record):
    spans = record["spans"]
    assert all(span["end"] is not None for span in spans)
    names = {span["name"] for span in spans}
    assert {"query", "dispatch", "task", "eval"} <= names, names
    roots = assemble_tree(spans)
    assert len(roots) == 1 and roots[0]["name"] == "query"


def _warm(cluster, expressions):
    # Absorb worker spin-up before the server's latency window opens,
    # so the rolling p99 reflects steady-state traffic only.
    for expression in expressions[:3]:
        cluster.execute(parse_query(expression))


def _tail_capture(deployment, warmup, stream):
    """Serve warmup + stream under tail retention; audit what was kept.

    The capture audit leans on a structural property instead of racing
    the rolling threshold: the latency window only grows here (far
    below its 2048 capacity), so the policy's p99 estimate is monotone
    non-decreasing, and any query above the *final* threshold was
    strictly above the rolling one when it was decided — it must have
    been retained.  The warmup stream is low-variance and cheap, so
    the varied measured stream owns the window's tail and that audit
    set is never empty.
    """
    with PipelinedCluster.start(
        deployment.fragments, deployment.indexes, num_machines=NUM_MACHINES
    ) as cluster:
        _warm(cluster, stream)
        config = ServeConfig(tail_sampling=True, slo=True, slow_query_ms=1000.0)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                for expression in warmup:
                    assert client.query(expression)["ok"]
                replies = [client.query(expression) for expression in stream]
                assert all(reply["ok"] for reply in replies)
                for reply in replies:
                    if "trace_id" in reply:
                        record = client.trace(trace_id=reply["trace_id"])["trace"]
                        _assert_full_span_tree(record)
                stats = client.stats()
    retention = stats["tracing"]["retention"]
    assert stats["tracing"]["mode"] == "tail"
    assert stats["slo"]["query"]["total"] == len(warmup) + len(stream)

    decided = [
        (reply["timing"]["latency_ms"], "trace_id" in reply) for reply in replies
    ]
    threshold_ms = retention["slow_threshold_ms"]
    tail_hits = [kept for latency, kept in decided if latency > threshold_ms]
    assert tail_hits, "stream produced no above-p99 tail to audit"
    capture = sum(tail_hits) / len(tail_hits)
    # No shedding at this qps: every triggered slow query got a token.
    assert retention["retained"]["slow"] == retention["triggered"]["slow"]
    assert retention["seen"] == len(warmup) + len(stream)
    return capture, len(tail_hits), retention


def _head_capture(deployment, warmup, stream):
    """Same stream under 1% head sampling: the tail is mostly invisible."""
    with PipelinedCluster.start(
        deployment.fragments, deployment.indexes, num_machines=NUM_MACHINES
    ) as cluster:
        _warm(cluster, stream)
        config = ServeConfig(trace_sample_rate=0.01)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                for expression in warmup:
                    assert client.query(expression)["ok"]
                replies = [client.query(expression) for expression in stream]
    decided = [
        (reply["timing"]["latency_ms"], "trace_id" in reply) for reply in replies
    ]
    threshold_ms = _p99([latency for latency, _ in decided])
    tail_hits = [kept for latency, kept in decided if latency > threshold_ms]
    return (sum(tail_hits) / len(tail_hits)) if tail_hits else 0.0, len(tail_hits)


def _errored_and_rerouted(deployment, expressions):
    """Force a timeout storm and a mid-flight failover; audit retention."""
    # -- timeouts: every errored query must be retained (as a counter;
    #    spans cannot be assembled for a query that never finished).
    with PipelinedCluster.start(
        deployment.fragments, deployment.indexes, num_machines=NUM_MACHINES
    ) as cluster:
        config = ServeConfig(tail_sampling=True, query_timeout_seconds=0.001)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                for expression in expressions[:3]:
                    reply = client.query(expression)
                    assert not reply["ok"] and reply["error"] == "timeout"
                retention = client.stats()["tracing"]["retention"]
    assert retention["triggered"]["error"] == 3
    assert retention["retained"]["error"] == 3
    errors_retained = retention["retained"]["error"]

    # -- failover: queries in flight on a killed worker re-dispatch to
    #    its replica and must keep their (rerouted-tagged) span trees.
    victim = 0
    with HACluster.start(
        deployment.fragments,
        deployment.indexes,
        num_machines=2,
        replication_factor=2,
        machine_delays={victim: 0.5},
    ) as cluster:
        config = ServeConfig(tail_sampling=True, allow_chaos=True)
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                inflight = 4
                for index, expression in enumerate(expressions[:inflight]):
                    client.send({"op": "query", "q": expression, "id": index})
                time.sleep(0.15)  # well under the victim's per-task delay
                with ServeClient(server.host, server.port) as chaos:
                    chaos.chaos_kill(victim)
                replies = [client.read_reply() for _ in range(inflight)]
                assert all(reply["ok"] for reply in replies)
                assert not any(reply["degraded"] for reply in replies)
                rerouted_records = [
                    client.trace(trace_id=reply["trace_id"])["trace"]
                    for reply in replies
                    if "trace_id" in reply
                ]
                retention = client.stats()["tracing"]["retention"]
    assert retention["triggered"]["rerouted"] > 0
    assert retention["retained"]["rerouted"] == retention["triggered"]["rerouted"]
    assert len(rerouted_records) >= retention["retained"]["rerouted"]
    rerouted_spans = 0
    for record in rerouted_records:
        _assert_full_span_tree(record)
        rerouted_spans += sum(
            1
            for span in record["spans"]
            if span["name"] == "dispatch" and span["tags"].get("rerouted")
        )
    assert rerouted_spans > 0
    return errors_retained, retention["retained"]["rerouted"]


def _timed_stream(deployment, expressions, config):
    """Best-of-ROUNDS closed-loop wall time for the stream."""
    best = float("inf")
    answers = None
    with PipelinedCluster.start(
        deployment.fragments, deployment.indexes, num_machines=NUM_MACHINES
    ) as cluster:
        with serve_in_thread(cluster, config) as server:
            with ServeClient(server.host, server.port) as client:
                client.query(expressions[0])  # warm workers + threshold
                for _ in range(ROUNDS):
                    started = time.perf_counter()
                    replies = [client.query(e) for e in expressions]
                    best = min(best, time.perf_counter() - started)
                    round_answers = [reply["nodes"] for reply in replies]
                    assert answers is None or answers == round_answers
                    answers = round_answers
    return best, answers


def test_tail_retention_beats_head_sampling_within_budget():
    print_experiment_header(
        "OBS",
        "tail retention + SLO engine",
        "Decide-after-completion trace retention vs 1% head sampling, "
        "and the serving cost of the full observability stack.",
    )
    deployment = engine("aus_tiny", 8)
    warmup = _warmup_expressions("aus_tiny", deployment.max_radius)
    stream = _expressions("aus_tiny", deployment.max_radius, NUM_QUERIES, seed=11)

    tail_capture, tail_n, retention = _tail_capture(deployment, warmup, stream)
    head_capture, head_n = _head_capture(deployment, warmup, stream)
    errors_retained, rerouted_retained = _errored_and_rerouted(deployment, stream)

    table = Table(
        f"{NUM_QUERIES} queries, {NUM_MACHINES} workers (AUS) — above-p99 capture",
        ["strategy", "tail captured", "of", "capture rate"],
    )
    table.add_row("head 1%", head_capture * head_n, head_n, head_capture)
    table.add_row("tail retention", tail_capture * tail_n, tail_n, tail_capture)
    table.show()
    print(
        f"errored retained: {errors_retained}/3, "
        f"rerouted retained: {rerouted_retained} (both must be 100%)"
    )

    assert tail_capture >= CAPTURE_TARGET, (tail_capture, tail_n)
    assert tail_capture >= head_capture

    overhead_ratio = None
    base_best = full_best = None
    if not CORRECTNESS_ONLY:
        timing_deployment = engine(TIMING_DATASET, 8)
        timing = _expressions(
            TIMING_DATASET, timing_deployment.max_radius, TIMING_QUERIES, seed=23
        )
        base_best, base_answers = _timed_stream(
            timing_deployment, timing, ServeConfig()
        )
        full_best, full_answers = _timed_stream(
            timing_deployment, timing, ServeConfig(tail_sampling=True, slo=True)
        )
        assert base_answers == full_answers
        overhead_ratio = full_best / base_best
        cost = Table(
            f"{TIMING_QUERIES} queries closed-loop on {TIMING_DATASET}, "
            f"best of {ROUNDS}",
            ["configuration", "best total (s)", "throughput (q/s)"],
        )
        cost.add_row("bare server", base_best, TIMING_QUERIES / base_best)
        cost.add_row("tail + slo", full_best, TIMING_QUERIES / full_best)
        cost.show()
        print(
            f"overhead ratio: {overhead_ratio:.3f}x "
            f"(target <=1.02, guard <{OVERHEAD_GUARD})"
        )

    record_benchmark(
        BENCH_FILE,
        {
            "experiment": "slo_overhead",
            "num_queries": NUM_QUERIES,
            "num_machines": NUM_MACHINES,
            "tail_capture": tail_capture,
            "tail_above_p99": tail_n,
            "head_capture": head_capture,
            "errors_retained": errors_retained,
            "rerouted_retained": rerouted_retained,
            "retention_kept": retention["kept"],
            "retention_seen": retention["seen"],
            "correctness_only": CORRECTNESS_ONLY,
            "untraced_seconds": base_best,
            "full_obs_seconds": full_best,
            "overhead_ratio": overhead_ratio,
        },
    )
    if overhead_ratio is not None:
        assert overhead_ratio < OVERHEAD_GUARD, (
            f"tail+slo slowed the stream {overhead_ratio:.2f}x "
            f"(guard {OVERHEAD_GUARD}x)"
        )
