"""EXP 1 (Fig. 7a, Fig. 7b, Fig. 8): NPD-index storage cost.

Paper: "the average storage cost in each machine is within 21MB for BRI,
and below 8MB for AUS … increases when maxR becomes larger … no regular
tendency as the number of machines varies.  Even to set maxR to
infinity, the index size is still acceptable."

Reproduced here as the average per-machine ``IND(P)`` file size over the
``maxR/ē`` and ``#fragments`` sweeps, plus the Fig. 8 curve including
``maxR = ∞`` on AUS.
"""

from __future__ import annotations

import math
import statistics

from repro.storage import index_file_size

from common import DEFAULT_FRAGMENTS, DEFAULT_LAMBDA, FRAGMENT_SWEEP, LAMBDA_SWEEP, engine
from repro.bench_support import Table, print_experiment_header


def _avg_index_kib(dataset_name: str, fragments: int, lam: float) -> float:
    deployment = engine(dataset_name, fragments, lam)
    sizes = [index_file_size(index) for index in deployment.indexes]
    return statistics.mean(sizes) / 1024.0


def test_exp1_fig7_size_vs_maxr_and_fragments(benchmark):
    print_experiment_header(
        "EXP 1",
        "Fig. 7(a)/(b)",
        "Average per-machine index size (KiB) vs maxR/ē and #fragments.",
    )
    for dataset_name, figure in (("bri_mini", "Fig. 7(a) BRI"), ("aus_mini", "Fig. 7(b) AUS")):
        table = Table(
            f"{figure} — avg IND(P) size per machine (KiB)",
            ["#fragments"] + [f"maxR={int(lam)}e" for lam in LAMBDA_SWEEP],
        )
        for fragments in FRAGMENT_SWEEP:
            row = [fragments]
            for lam in LAMBDA_SWEEP:
                row.append(_avg_index_kib(dataset_name, fragments, lam))
            table.add_row(*row)
        table.show()

    benchmark(
        lambda: statistics.mean(
            index_file_size(i)
            for i in engine("aus_mini", DEFAULT_FRAGMENTS, DEFAULT_LAMBDA).indexes
        )
    )


def test_exp1_fig8_size_vs_maxr_including_infinity(benchmark):
    print_experiment_header(
        "EXP 1",
        "Fig. 8",
        "AUS index size vs maxR, including the untruncated maxR=∞ index.",
    )
    table = Table(
        "Fig. 8 — AUS avg IND(P) per machine (KiB), 16 fragments",
        ["maxR/avg-edge", "size (KiB)", "recorded distances"],
    )
    for lam in list(LAMBDA_SWEEP) + [math.inf]:
        deployment = engine("aus_mini", DEFAULT_FRAGMENTS, lam)
        kib = statistics.mean(index_file_size(i) for i in deployment.indexes) / 1024.0
        distances = statistics.mean(
            i.num_recorded_distances for i in deployment.indexes
        )
        label = "inf" if math.isinf(lam) else f"{int(lam)}"
        table.add_row(label, kib, int(distances))
    table.show()

    finite = _avg_index_kib("aus_mini", DEFAULT_FRAGMENTS, DEFAULT_LAMBDA)
    infinite = statistics.mean(
        index_file_size(i) for i in engine("aus_mini", DEFAULT_FRAGMENTS, math.inf).indexes
    ) / 1024.0
    # Paper shape: size grows with maxR but the untruncated index stays
    # within the same order of magnitude.
    assert infinite >= finite
    assert infinite < finite * 50

    benchmark(lambda: index_file_size(engine("aus_mini").indexes[0]))


def test_exp1_size_grows_with_maxr(benchmark):
    """The Fig. 7 monotone trend: bigger maxR, bigger index."""
    sizes = [_avg_index_kib("aus_mini", DEFAULT_FRAGMENTS, lam) for lam in LAMBDA_SWEEP]
    assert sizes == sorted(sizes), f"index size not monotone in maxR: {sizes}"
    benchmark(lambda: _avg_index_kib("aus_mini", DEFAULT_FRAGMENTS, 5.0))
