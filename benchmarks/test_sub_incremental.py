"""Standing queries: delta-driven incremental re-evaluation vs naive.

The pub/sub subsystem's entire reason to exist is this ratio: on an
epoch swap, re-running only the subscriptions the delta can affect —
and only on their changed fragments — must beat re-running everything
from scratch by a wide margin.  The claim gated here: **≥5× at ≤10%
fragment churn**, with the two paths producing bit-identical results
on every epoch (checked before any timing is trusted).

Second claim: attaching a large registry must not tax the update path
itself.  The engine re-evaluates *after* the swap is published (swap
subscribers run outside the ``swap_seconds`` window), so publish
latency with 1k standing queries attached stays within noise of an
unsubscribed manager.

Set ``BENCH_SUB_CORRECTNESS_ONLY=1`` (the CI smoke job does) to run
the same differential assertions on a small deployment and skip the
timing claims, which need a quiet machine.
"""

from __future__ import annotations

import gc
import os
import statistics
import time
from pathlib import Path

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.live import EpochManager
from repro.partition import MultilevelPartitioner
from repro.sub import SubscriptionEngine
from repro.workloads import (
    QueryGenConfig,
    QueryGenerator,
    UpdateGenConfig,
    UpdateStreamGenerator,
    load_dataset,
)

from repro.bench_support import Table, print_experiment_header, record_benchmark

CORRECTNESS_ONLY = os.environ.get("BENCH_SUB_CORRECTNESS_ONLY") == "1"
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_sub.json"

REQUIRED_SPEEDUP = 5.0
LOW_CHURN = 0.10  # the fragment-churn ceiling the headline claim holds at

# A small lambda keeps maxR — and with it the reach of keyword-delta
# maintenance — local, which is the regime standing queries live in
# (micro-updates against a large deployment).  λ=40 on a tiny network
# would make every keyword op touch most fragments and the "≤10%
# churn" premise vacuous.
if CORRECTNESS_ONLY:
    DATASET, NUM_FRAGMENTS = "aus_tiny", 8
    SPEEDUP_SUBS, SWAP_SUBS = 24, 48
    NUM_BATCHES, BATCH_SIZE = 5, 3
else:
    DATASET, NUM_FRAGMENTS = "bri_tiny", 20
    SPEEDUP_SUBS, SWAP_SUBS = 200, 1000
    # Single-op batches: the shape a pub/sub ingest actually swaps at
    # (each event published as it arrives).  Multi-op batches union
    # their per-op fragment reach and drive churn toward 100%, which is
    # the naive path's home turf, not the incremental path's.
    NUM_BATCHES, BATCH_SIZE = 24, 1
LAMBDA = 5.0

UPDATE_MIX = dict(add_fraction=0.50, remove_fraction=0.45, edge_fraction=0.05)


def _deployment():
    net = load_dataset(DATASET).network
    partition = MultilevelPartitioner(seed=0).partition(net, NUM_FRAGMENTS)
    fragments = build_fragments(net, partition)
    indexes, _ = build_all_indexes(
        net, fragments, NPDBuildConfig(lambda_factor=LAMBDA)
    )
    return net, partition, fragments, list(indexes)


def _manager(deployment) -> EpochManager:
    net, partition, fragments, indexes = deployment
    return EpochManager(
        network=net,
        partition=partition,
        fragments=list(fragments),
        indexes=list(indexes),
    )


def _subscribe(engine: SubscriptionEngine, net, count: int, max_radius: float):
    """Half tight RKQs (scoped), half SGKQs (unscoped), §6 protocol."""
    generator = QueryGenerator(net, QueryGenConfig(seed=9))
    subs = []
    for i in range(count):
        if i % 2 == 0:
            query = generator.rkq(2, max_radius / 4)
        else:
            query = generator.sgkq(2, max_radius / 2)
        subs.append(engine.register(query, sub_id=f"q{i}"))
    return subs


def test_incremental_vs_naive_reevaluation(benchmark):
    print_experiment_header(
        "SUB",
        "standing queries: incremental vs naive re-evaluation",
        f"{SPEEDUP_SUBS} subscriptions over {NUM_FRAGMENTS} fragments of "
        f"{DATASET}; per-batch timing of delta-routed re-evaluation vs "
        "re-running every subscription from scratch, results compared "
        "bit-for-bit each epoch.",
    )
    deployment = _deployment()
    net = deployment[0]
    manager = _manager(deployment)
    max_radius = deployment[3][0].max_radius

    # Both engines are detached (close() drops the manager hook) and
    # driven by hand, so each path is timed in isolation on the same
    # swap sequence.
    incremental = SubscriptionEngine(manager)
    incremental.close()
    naive = SubscriptionEngine(manager)
    naive.close()
    _subscribe(incremental, net, SPEEDUP_SUBS, max_radius)
    subs = _subscribe(naive, net, SPEEDUP_SUBS, max_radius)
    for sub in subs:
        assert incremental.registry.get(sub.sub_id).result == sub.result

    stream = UpdateStreamGenerator(net, UpdateGenConfig(seed=9, **UPDATE_MIX))
    rows = []
    low_inc = low_naive = 0.0
    low_batches = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for batch in stream.batches(NUM_BATCHES, BATCH_SIZE):
            swap = manager.apply(batch)
            delta = manager.state.delta_from(swap.changed_fragments)

            started = time.perf_counter()
            incremental._on_swap(manager.state, delta, swap)
            inc_seconds = time.perf_counter() - started

            started = time.perf_counter()
            naive.reevaluate_all()
            naive_seconds = time.perf_counter() - started

            # Differential: the incremental state matches from-scratch.
            for sub in subs:
                assert (
                    incremental.registry.get(sub.sub_id).result
                    == naive.registry.get(sub.sub_id).result
                ), sub.sub_id

            churn = len(swap.changed_fragments) / NUM_FRAGMENTS
            rows.append((swap.epoch, churn, inc_seconds, naive_seconds))
            if churn <= LOW_CHURN:
                low_inc += inc_seconds
                low_naive += naive_seconds
                low_batches += 1
    finally:
        if gc_was_enabled:
            gc.enable()

    table = Table(
        f"{NUM_BATCHES} batches × {BATCH_SIZE} ops, "
        f"{SPEEDUP_SUBS} subscriptions, maxR={max_radius:.2f}",
        ["epoch", "churn", "incremental (ms)", "naive (ms)", "speedup"],
    )
    for epoch, churn, inc_seconds, naive_seconds in rows:
        table.add_row(
            epoch,
            f"{churn:.0%}",
            inc_seconds * 1000.0,
            naive_seconds * 1000.0,
            naive_seconds / inc_seconds if inc_seconds > 0 else float("inf"),
        )
    table.show()

    if not CORRECTNESS_ONLY:
        assert low_batches, "no batch stayed under the low-churn ceiling"
    if not low_batches:
        # Smoke deployments are too small for a ≤10% batch (one fragment
        # of eight already exceeds it); report over all batches instead.
        low_inc = sum(row[2] for row in rows)
        low_naive = sum(row[3] for row in rows)
    speedup = low_naive / low_inc if low_inc > 0 else float("inf")

    record_benchmark(
        BENCH_FILE,
        {
            "experiment": "sub_incremental",
            "dataset": DATASET,
            "num_fragments": NUM_FRAGMENTS,
            "subscriptions": SPEEDUP_SUBS,
            "batches": NUM_BATCHES,
            "batch_size": BATCH_SIZE,
            "max_radius": round(max_radius, 3),
            "low_churn_ceiling": LOW_CHURN,
            "low_churn_batches": low_batches,
            "incremental_seconds": round(low_inc, 5),
            "naive_seconds": round(low_naive, 5),
            "speedup": round(speedup, 2) if speedup != float("inf") else None,
            "correctness_only": CORRECTNESS_ONLY,
        },
    )

    if not CORRECTNESS_ONLY:
        # The headline claim: ≥5× at ≤10% fragment churn.
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected incremental ≥{REQUIRED_SPEEDUP:g}× naive at "
            f"≤{LOW_CHURN:.0%} churn, got {speedup:.2f}× "
            f"({low_inc * 1000:.2f}ms vs {low_naive * 1000:.2f}ms over "
            f"{low_batches} batches)"
        )

    benchmark(lambda: None)  # timings above; keep the harness uniform


def test_swap_latency_unmoved_by_large_registry(benchmark):
    print_experiment_header(
        "SUB-SWAP",
        "publish latency with a large registry attached",
        f"swap_seconds of {NUM_BATCHES} identical update batches with no "
        f"subscribers vs {SWAP_SUBS} standing queries attached — the "
        "engine re-evaluates after publish, outside the swap window.",
    )
    deployment = _deployment()
    net = deployment[0]
    max_radius = deployment[3][0].max_radius

    def swap_latencies(attach: bool) -> list[float]:
        manager = _manager(deployment)
        engine = None
        if attach:
            engine = SubscriptionEngine(manager)
            _subscribe(engine, net, SWAP_SUBS, max_radius)
        stream = UpdateStreamGenerator(net, UpdateGenConfig(seed=9, **UPDATE_MIX))
        seconds = [
            manager.apply(batch).swap_seconds
            for batch in stream.batches(NUM_BATCHES, BATCH_SIZE)
        ]
        if engine is not None:
            assert engine.epoch == NUM_BATCHES  # it did follow the swaps
            engine.close()
        return seconds

    baseline = statistics.median(swap_latencies(attach=False))
    attached = statistics.median(swap_latencies(attach=True))

    table = Table(
        f"median swap_seconds over {NUM_BATCHES} batches",
        ["registry", "median swap (ms)"],
    )
    table.add_row("empty", baseline * 1000.0)
    table.add_row(f"{SWAP_SUBS} subs", attached * 1000.0)
    table.show()

    record_benchmark(
        BENCH_FILE,
        {
            "experiment": "sub_swap_latency",
            "dataset": DATASET,
            "subscriptions": SWAP_SUBS,
            "batches": NUM_BATCHES,
            "baseline_swap_ms": round(baseline * 1000.0, 4),
            "attached_swap_ms": round(attached * 1000.0, 4),
            "correctness_only": CORRECTNESS_ONLY,
        },
    )

    if not CORRECTNESS_ONLY:
        # "Within noise": the medians are sub-millisecond, so gate on a
        # generous envelope that re-evaluating 1k subscriptions inside
        # the swap window would blow through immediately.
        assert attached <= 3.0 * baseline + 0.005, (
            f"swap latency moved: {baseline * 1000:.3f}ms empty vs "
            f"{attached * 1000:.3f}ms with {SWAP_SUBS} subscriptions"
        )

    benchmark(lambda: None)
