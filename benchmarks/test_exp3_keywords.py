"""EXP 3 (Fig. 10, Fig. 11): query time vs the number of keywords.

Paper: both the distributed method and the 1-fragment reference grow
with the keyword count, but the distributed method scales much better
because the NPD-index lets every fragment run independently.

Reproduced on both scaled datasets at the Table-2 defaults
(16 fragments, r = maxR): mean distributed response time vs the
1-fragment (centralized) time for 3–11 keywords.
"""

from __future__ import annotations

from common import (
    DEFAULT_FRAGMENTS,
    DEFAULT_LAMBDA,
    KEYWORD_SWEEP,
    engine,
    mean_centralized_ms,
    mean_distributed_ms,
    sgkq_batch,
    warm_up,
)
from repro.bench_support import Table, print_experiment_header


def _sweep(dataset_name: str) -> tuple[list[float], list[float]]:
    deployment = engine(dataset_name, DEFAULT_FRAGMENTS, DEFAULT_LAMBDA)
    warm_up(deployment, dataset_name)
    radius = deployment.max_radius
    distributed, central = [], []
    for num_keywords in KEYWORD_SWEEP:
        batch = sgkq_batch(dataset_name, num_keywords, radius)
        distributed.append(mean_distributed_ms(deployment, batch))
        central.append(mean_centralized_ms(dataset_name, batch))
    return distributed, central


def _run(dataset_name: str, figure: str, benchmark) -> None:
    print_experiment_header(
        "EXP 3",
        figure,
        f"{dataset_name}: SGKQ time vs #keywords; 16 fragments, r = maxR.",
    )
    distributed, central = _sweep(dataset_name)
    table = Table(
        f"{figure} — mean query time (ms), {dataset_name}",
        ["#keywords", "distributed (16 frags)", "1 fragment", "ratio"],
    )
    for nk, d, c in zip(KEYWORD_SWEEP, distributed, central):
        table.add_row(nk, d, c, c / d if d else float("inf"))
    table.show()

    # Paper shapes: cost grows with keyword count; distributed wins, and
    # the gap widens (better scalability with #keywords).
    assert distributed[-1] > min(distributed) * 1.1
    assert central[-1] > central[0] * 1.2
    assert all(d < c for d, c in zip(distributed, central))

    deployment = engine(dataset_name, DEFAULT_FRAGMENTS, DEFAULT_LAMBDA)
    batch = sgkq_batch(dataset_name, 7, deployment.max_radius)
    benchmark(lambda: [deployment.execute(q) for q in batch])


def test_exp3_fig10_bri(benchmark):
    _run("bri_mini", "Fig. 10 (BRI)", benchmark)


def test_exp3_fig11_aus(benchmark):
    _run("aus_mini", "Fig. 11 (AUS)", benchmark)
