"""Benchmark-suite configuration.

Adds this directory to the import path (for ``common``) and forces
``-s``-like output so the paper-style tables always reach the terminal.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
