"""Serving ablation: pipelined dispatch vs lockstep round trips.

The lockstep :class:`~repro.dist.ProcessCluster` broadcasts one query,
waits for every machine, and only then admits the next — so each query
pays a full coordinator↔machine round trip, serially.  The serving
layer's :class:`~repro.serve.PipelinedCluster` multiplexes many
in-flight queries over the same worker processes (request-id tagging,
dispatcher threads), overlapping the round trips:

    lockstep  total ≈ Σ_q (rtt + max_m τ(q, m))
    pipelined total ≈ max_m Σ_q τ(q, m)          (rtt hidden)

Both clusters run with the same emulated interconnect
(``network_model``: delivery at ``sent_at + latency + bytes/bw``) so
the comparison measures the *dispatch protocol*, not the hardware.
Single-host pipes hide the network entirely — and this CI box has one
core, which also serialises worker compute — so the link emulation is
what makes the paper's distributed-deployment trade-off visible at
all.  A 2 ms one-way latency (≈4 ms RTT — a routed datacenter network
rather than the paper's single rack switch) is used; the pipelining
advantage only grows with latency.
"""

from __future__ import annotations

import time

from repro.dist import NetworkModel, ProcessCluster
from repro.serve import PipelinedCluster
from repro.workloads import QueryGenConfig, QueryGenerator

from common import dataset, engine
from repro.bench_support import Table, print_experiment_header

NUM_MACHINES = 4
NUM_QUERIES = 32
LINK = NetworkModel(latency_seconds=2e-3)


def _query_stream(dataset_name: str, max_radius: float):
    gen = QueryGenerator(dataset(dataset_name).network, QueryGenConfig(seed=7))
    return [
        gen.sgkq(3, max_radius / 3) if i % 4 == 0 else gen.rkq(2, max_radius / 2)
        for i in range(NUM_QUERIES)
    ]


def _lockstep_run(cluster: ProcessCluster, queries) -> tuple[float, list]:
    results = []
    started = time.perf_counter()
    for query in queries:
        results.append(cluster.execute(query).result_nodes)
    return time.perf_counter() - started, results


def _pipelined_run(cluster: PipelinedCluster, queries) -> tuple[float, list]:
    started = time.perf_counter()
    pendings = [cluster.submit(query) for query in queries]
    results = [pending.future.result(timeout=120).result_nodes for pending in pendings]
    return time.perf_counter() - started, results


def test_pipelined_beats_lockstep(benchmark):
    print_experiment_header(
        "SERVE",
        "pipelined worker protocol",
        "Same workers, same queries, same emulated link: "
        "request-id multiplexing vs lockstep.",
    )
    deployment = engine("aus_tiny", 8)
    queries = _query_stream("aus_tiny", deployment.max_radius)

    with ProcessCluster.start(
        deployment.fragments,
        deployment.indexes,
        num_machines=NUM_MACHINES,
        network_model=LINK,
    ) as lockstep:
        lockstep.execute(queries[0])  # warm the workers
        lockstep_secs, lockstep_results = _lockstep_run(lockstep, queries)

    with PipelinedCluster.start(
        deployment.fragments,
        deployment.indexes,
        num_machines=NUM_MACHINES,
        network_model=LINK,
    ) as pipelined:
        pipelined.execute(queries[0])  # warm the workers
        pipelined_secs, pipelined_results = _pipelined_run(pipelined, queries)

        table = Table(
            f"{NUM_QUERIES} mixed queries, {NUM_MACHINES} workers, "
            f"{LINK.latency_seconds * 1e3:g} ms one-way link (AUS)",
            ["dispatch", "total (s)", "throughput (q/s)"],
        )
        table.add_row("lockstep", lockstep_secs, NUM_QUERIES / lockstep_secs)
        table.add_row("pipelined", pipelined_secs, NUM_QUERIES / pipelined_secs)
        table.show()

        # Same workers, same answers.
        assert pipelined_results == lockstep_results

        # The headline claim: multiplexing the same processes is ≥1.5×.
        assert lockstep_secs >= 1.5 * pipelined_secs, (
            f"expected pipelined ≥1.5× lockstep, got "
            f"{lockstep_secs:.3f}s vs {pipelined_secs:.3f}s "
            f"({lockstep_secs / pipelined_secs:.2f}x)"
        )

        benchmark(lambda: _pipelined_run(pipelined, queries))
