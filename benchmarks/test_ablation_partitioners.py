"""Ablation: partitioner choice (the ParMETIS substitution, DESIGN.md §4).

The paper uses ParMETIS "for a balanced fragmenting"; portal counts
drive NPD-index size and construction cost (§3.3/§4.1).  This ablation
quantifies that chain on AUS: edge cut -> portals -> index size ->
build time, for each partitioner, including the random worst case.
"""

from __future__ import annotations

import statistics

from repro.core import NPDBuildConfig, build_all_indexes, build_fragments
from repro.partition import (
    BfsPartitioner,
    MultilevelPartitioner,
    RandomPartitioner,
    SpatialPartitioner,
    evaluate_partition,
)
from repro.storage import index_file_size

from common import dataset
from repro.bench_support import Table, print_experiment_header

K = 8
LAMBDA = 10.0


def _measure(partitioner):
    net = dataset("aus_mini").network
    partition = partitioner.partition(net, K)
    quality = evaluate_partition(net, partition)
    fragments = build_fragments(net, partition)
    indexes, stats = build_all_indexes(net, fragments, NPDBuildConfig(lambda_factor=LAMBDA))
    return {
        "cut": quality.edge_cut,
        "portals": quality.total_portals,
        "balance": quality.balance,
        "kib": statistics.mean(index_file_size(i) for i in indexes) / 1024,
        "build_s": statistics.mean(s.wall_seconds for s in stats),
    }


def test_ablation_partitioner_quality_drives_index_cost(benchmark):
    print_experiment_header(
        "ABLATION",
        "DESIGN.md partitioner study",
        f"AUS, k={K}, maxR={int(LAMBDA)}e: cut -> portals -> index size -> build time.",
    )
    rows = {
        "multilevel": _measure(MultilevelPartitioner(seed=1)),
        "bfs-grow": _measure(BfsPartitioner(seed=1)),
        "spatial": _measure(SpatialPartitioner()),
        "random": _measure(RandomPartitioner(seed=1)),
    }
    table = Table(
        "Partitioner ablation (AUS)",
        ["partitioner", "edge cut", "portals", "balance", "avg IND KiB", "build s/frag"],
    )
    for name, m in rows.items():
        table.add_row(name, m["cut"], m["portals"], m["balance"], m["kib"], m["build_s"])
    table.show()

    # The causal chain: random's huge cut must inflate portals, index
    # size and build time relative to every locality-aware partitioner.
    for name in ("multilevel", "bfs-grow", "spatial"):
        assert rows[name]["cut"] < rows["random"]["cut"] / 2
        assert rows[name]["portals"] < rows["random"]["portals"]
        assert rows[name]["kib"] < rows["random"]["kib"]

    benchmark(lambda: MultilevelPartitioner(seed=1).partition(dataset("aus_mini").network, K))


def test_ablation_portal_refinement(benchmark):
    """Portal-minimising refinement on top of each partitioner."""
    from repro.partition import refine_portals

    print_experiment_header(
        "ABLATION",
        "portal-minimising refinement",
        f"AUS, k={K}: total portals before/after refine_portals().",
    )
    net = dataset("aus_mini").network
    table = Table(
        "Portal refinement (AUS)",
        ["partitioner", "portals before", "portals after", "reduction"],
    )
    for name, partitioner in (
        ("multilevel", MultilevelPartitioner(seed=1)),
        ("bfs-grow", BfsPartitioner(seed=1)),
        ("spatial", SpatialPartitioner()),
    ):
        before = partitioner.partition(net, K)
        after = refine_portals(net, before)
        p_before = evaluate_partition(net, before).total_portals
        p_after = evaluate_partition(net, after).total_portals
        table.add_row(
            name,
            p_before,
            p_after,
            f"{(p_before - p_after) / p_before:.1%}" if p_before else "0%",
        )
        assert p_after <= p_before
    table.show()

    partition = MultilevelPartitioner(seed=1).partition(net, K)
    benchmark(lambda: refine_portals(net, partition, max_sweeps=1))
