"""Ablation: load balance (Theorem 6, §5.2).

Measures the observed unbalance factor U across machines for query
batches, checks it against Theorem 6's bound ``1 + max/min`` of
per-fragment task costs, and shows how balance behaves when machines
are scarcer than fragments (list-scheduling regime).
"""

from __future__ import annotations

import statistics

from repro.core.cost import assign_tasks, theorem6_bound, unbalance_factor

from common import DEFAULT_KEYWORDS, DEFAULT_LAMBDA, engine, sgkq_batch
from repro.bench_support import Table, print_experiment_header


def test_ablation_unbalance_factor(benchmark):
    print_experiment_header(
        "ABLATION",
        "Theorem 6 load balance",
        "AUS: observed unbalance U vs the 1 + max/min bound.",
    )
    deployment = engine("aus_mini", 16, DEFAULT_LAMBDA)
    batch = sgkq_batch("aus_mini", DEFAULT_KEYWORDS, deployment.max_radius)

    table = Table(
        "Observed vs bounded unbalance (16 machines, AUS)",
        ["query", "U observed", "Theorem 6 bound", "holds"],
    )
    for i, query in enumerate(batch):
        report = deployment.execute(query)
        observed = report.unbalance
        bound = report.unbalance_bound
        table.add_row(i, observed, bound, observed <= bound + 1e-9)
        assert observed <= bound + 1e-9
    table.show()

    # Scarce-machine regime: schedule measured task costs onto fewer
    # machines and watch U tighten toward 1 (more tasks smooth the load).
    report = deployment.execute(batch[0])
    task_costs = [report.fragment_seconds[f] for f in sorted(report.fragment_seconds)]
    table2 = Table(
        "List scheduling of one query's 16 tasks onto fewer machines",
        ["#machines", "U observed", "bound"],
    )
    for machines in (2, 4, 8, 16):
        plan = assign_tasks(task_costs, machines)
        loads = [sum(task_costs[t] for t in tasks) for tasks in plan if tasks]
        table2.add_row(machines, unbalance_factor(loads), theorem6_bound(task_costs))
        assert unbalance_factor(loads) <= theorem6_bound(task_costs) + 1e-9
    table2.show()

    benchmark(lambda: deployment.execute(batch[0]))
