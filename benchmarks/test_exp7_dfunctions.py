"""EXP 7 (Fig. 16): effect of different D-functions.

Paper: with 7 keywords and θᵢ drawn from {∩, −}, varying the number of
subtraction operators from 0 to 6 has a *minor* effect — evaluating the
keyword coverages dominates (>95% of the cost), not the set algebra.

Reproduced on AUS at the Table-2 defaults.
"""

from __future__ import annotations

import statistics

from repro.workloads import QueryGenConfig, QueryGenerator

from common import DEFAULT_FRAGMENTS, DEFAULT_LAMBDA, dataset, engine
from repro.bench_support import Table, print_experiment_header

NUM_KEYWORDS = 7


def test_exp7_fig16_operator_mix(benchmark):
    print_experiment_header(
        "EXP 7",
        "Fig. 16",
        "AUS: SGKQ chain of 7 coverages with 0-6 subtraction operators.",
    )
    deployment = engine("aus_mini", DEFAULT_FRAGMENTS, DEFAULT_LAMBDA)
    radius = deployment.max_radius / 2
    generator = QueryGenerator(dataset("aus_mini").network, QueryGenConfig(seed=3))

    table = Table(
        "Fig. 16 — mean query time (ms) by #subtraction operators, AUS",
        ["#subtractions", "query time (ms)", "mean |results|"],
    )
    times = []
    for minus in range(0, NUM_KEYWORDS):
        queries = [
            generator.dfunction_mix(NUM_KEYWORDS, radius, minus) for _ in range(4)
        ]
        reports = [deployment.execute(q) for q in queries]
        ms = statistics.mean(r.response_seconds for r in reports) * 1000
        results = statistics.mean(r.num_results for r in reports)
        times.append(ms)
        table.add_row(minus, ms, results)
    table.show()

    # Paper shape: the operator mix has only a minor effect.
    assert max(times) < min(times) * 3.0, (
        f"D-function mix should not dominate cost: {times}"
    )

    queries = [generator.dfunction_mix(NUM_KEYWORDS, radius, 3) for _ in range(4)]
    benchmark(lambda: [deployment.execute(q) for q in queries])
