"""EXP 5 (Fig. 9): effect of the index factor maxR on query time.

Paper: "the maxR value has a very limited effect on the query
performance, even when maxR is set to positive infinity" — the index
only stores *more* truncated distances; queries retain only pairs within
r (Alg. 2 step 2), so a fatter index barely changes the search.

Reproduced on AUS: the same query batch (fixed r = 5ē, servable by every
index level) against deployments built with maxR ∈ {5ē, 10ē, 20ē, 40ē, ∞}.
"""

from __future__ import annotations

import math

from common import DEFAULT_FRAGMENTS, LAMBDA_SWEEP, engine, mean_distributed_ms, sgkq_batch
from repro.bench_support import Table, print_experiment_header

QUERY_LAMBDA = 5.0  # r = 5ē fits under every index level in the sweep


def test_exp5_fig9_query_time_vs_maxr(benchmark):
    print_experiment_header(
        "EXP 5",
        "Fig. 9",
        "AUS: query time vs index maxR (incl. ∞); fixed r = 5ē, 7 keywords.",
    )
    base = engine("aus_mini", DEFAULT_FRAGMENTS, LAMBDA_SWEEP[0])
    radius = base.max_radius * (QUERY_LAMBDA / LAMBDA_SWEEP[0])
    batch = sgkq_batch("aus_mini", 7, radius)

    table = Table(
        "Fig. 9 — mean SGKQ time (ms) by index maxR, AUS",
        ["index maxR", "query time (ms)"],
    )
    times = []
    for lam in list(LAMBDA_SWEEP) + [math.inf]:
        deployment = engine("aus_mini", DEFAULT_FRAGMENTS, lam)
        ms = mean_distributed_ms(deployment, batch)
        times.append(ms)
        table.add_row("inf" if math.isinf(lam) else f"{int(lam)}e", ms)
    table.show()

    # Paper shape: near-flat — even the untruncated index only slightly
    # raises the query time over the tightest one.
    assert max(times) < min(times) * 3.0, f"maxR effect should be limited: {times}"

    deployment = engine("aus_mini", DEFAULT_FRAGMENTS, math.inf)
    benchmark(lambda: [deployment.execute(q) for q in batch])
