"""Shared infrastructure for the benchmark harness.

The benchmarks reproduce the paper's §6 evaluation on the scaled
datasets (DESIGN.md documents the substitutions).  Table 2 parameters
are used verbatim where tractable:

    maxR/ē      : 5, 10, 20, **40**
    #keywords   : 3, 5, 7, **7**, 9, 11
    #fragments  : 2, 4, 8, 12, **16**
    r           : maxR, maxR/2, maxR/3, maxR/4 (and 40ē)

Engines are memoised per (dataset, fragments, λ, policy) so sweeps that
share a deployment never rebuild it.
"""

from __future__ import annotations

import math
import statistics
from functools import lru_cache

from repro import DisksEngine, EngineConfig
from repro.baselines import CentralizedEvaluator
from repro.core import QClassQuery
from repro.core.npd import DLNodePolicy
from repro.partition import MultilevelPartitioner
from repro.workloads import Dataset, QueryGenConfig, QueryGenerator, load_dataset

# Table 2 defaults (bold values).
DEFAULT_LAMBDA = 40.0
DEFAULT_KEYWORDS = 7
DEFAULT_FRAGMENTS = 16
LAMBDA_SWEEP = (5.0, 10.0, 20.0, 40.0)
KEYWORD_SWEEP = (3, 5, 7, 9, 11)
FRAGMENT_SWEEP = (2, 4, 8, 12, 16)

QUERIES_PER_POINT = 5  # queries averaged per sweep point


@lru_cache(maxsize=None)
def dataset(name: str) -> Dataset:
    """Memoised dataset by preset name."""
    return load_dataset(name)


@lru_cache(maxsize=None)
def engine(
    dataset_name: str,
    num_fragments: int = DEFAULT_FRAGMENTS,
    lambda_factor: float = DEFAULT_LAMBDA,
    policy: DLNodePolicy = DLNodePolicy.OBJECTS,
) -> DisksEngine:
    """Memoised deployment for one parameter combination."""
    net = dataset(dataset_name).network
    lam: float | None = lambda_factor
    max_radius: float | None = None
    if math.isinf(lambda_factor):
        lam, max_radius = None, math.inf
    return DisksEngine.build(
        net,
        EngineConfig(
            num_fragments=num_fragments,
            lambda_factor=lam,
            max_radius=max_radius,
            node_policy=policy,
            partitioner=MultilevelPartitioner(seed=0),
        ),
    )


@lru_cache(maxsize=None)
def centralized(dataset_name: str) -> CentralizedEvaluator:
    """Memoised centralized evaluator (the '1 fragment' reference)."""
    return CentralizedEvaluator(dataset(dataset_name).network)


def sgkq_batch(
    dataset_name: str, num_keywords: int, radius: float, seed: int = 1
) -> list[QClassQuery]:
    """A reproducible SGKQ batch from the §6 generator."""
    gen = QueryGenerator(dataset(dataset_name).network, QueryGenConfig(seed=seed))
    return gen.sgkq_batch(QUERIES_PER_POINT, num_keywords, radius)


def rkq_batch(
    dataset_name: str, num_keywords: int, radius: float, seed: int = 1
) -> list[QClassQuery]:
    """A reproducible RKQ batch."""
    gen = QueryGenerator(dataset(dataset_name).network, QueryGenConfig(seed=seed))
    return gen.rkq_batch(QUERIES_PER_POINT, num_keywords, radius)


def warm_up(eng: DisksEngine, dataset_name: str) -> None:
    """Run one throwaway query on both paths (distributed + centralized)
    so sweeps measure steady-state times."""
    batch = sgkq_batch(dataset_name, 2, eng.max_radius / 4, seed=987)
    eng.execute(batch[0])
    centralized(dataset_name).execute(batch[0])


def mean_distributed_ms(eng: DisksEngine, queries: list[QClassQuery]) -> float:
    """Central tendency of distributed response time over a batch, ms.

    The median is used (despite the historical name) so that one
    OS-noise outlier cannot flip a sweep's shape assertion.
    """
    return statistics.median(
        eng.execute(query).response_seconds * 1000.0 for query in queries
    )


def mean_centralized_ms(dataset_name: str, queries: list[QClassQuery]) -> float:
    """Central tendency of single-machine evaluation time, ms (median)."""
    oracle = centralized(dataset_name)
    return statistics.median(
        oracle.execute(query).wall_seconds * 1000.0 for query in queries
    )
