"""EXP 8 (Fig. 17): range keyword query performance.

Paper: RKQ is a Q-class query handled by the same machinery; its
performance "scales well with the number of keywords" (the extra
keywords only add radius-0 containment terms, so the R(l, r) range term
dominates).

Reproduced on AUS at the Table-2 defaults for 3-11 keywords.
"""

from __future__ import annotations

from common import (
    DEFAULT_FRAGMENTS,
    DEFAULT_LAMBDA,
    KEYWORD_SWEEP,
    engine,
    mean_distributed_ms,
    rkq_batch,
)
from repro.bench_support import Table, print_experiment_header


def test_exp8_fig17_rkq_vs_keywords(benchmark):
    print_experiment_header(
        "EXP 8",
        "Fig. 17",
        "AUS: RKQ time vs #keywords; 16 fragments, r = maxR/2.",
    )
    deployment = engine("aus_mini", DEFAULT_FRAGMENTS, DEFAULT_LAMBDA)
    radius = deployment.max_radius / 2

    table = Table(
        "Fig. 17 — mean RKQ time (ms) by #keywords, AUS",
        ["#keywords", "query time (ms)"],
    )
    times = []
    for num_keywords in KEYWORD_SWEEP:
        batch = rkq_batch("aus_mini", num_keywords, radius)
        ms = mean_distributed_ms(deployment, batch)
        times.append(ms)
        table.add_row(num_keywords, ms)
    table.show()

    # Paper shape: scales well — going from 3 to 11 keywords should not
    # blow the time up (the range term dominates; keyword terms are
    # radius-0 lookups).
    assert times[-1] < times[0] * 4.0, f"RKQ should scale well with keywords: {times}"

    batch = rkq_batch("aus_mini", 7, radius)
    benchmark(lambda: [deployment.execute(q) for q in batch])
